package beam

import (
	"encoding/json"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
)

// beamStopConfig budgets enough strikes per chain that a loose margin
// genuinely truncates: boundaries every 8 strikes, 0.35 half-width.
func beamStopConfig() Config {
	return Config{
		Seed:                3,
		BeamHours:           1,
		StrikesPerComponent: 40,
		TargetMargin:        0.35,
		StopCheckEvery:      8,
	}
}

func beamJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBeamStopWorkerInvariance: a chain is a self-contained sequential
// session, so its cut is a pure function of its own strike sequence and
// the stopped campaign is byte-identical at any worker count.
func TestBeamStopWorkerInvariance(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	seq := beamStopConfig()
	seq.Workers = 1
	par := beamStopConfig()
	par.Workers = 3
	a, err := Run(seq, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(par, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aw, bw := beamJSON(t, a.Workloads), beamJSON(t, b.Workloads); aw != bw {
		t.Errorf("stopped Workloads differ across worker counts:\n%s\nvs\n%s", aw, bw)
	}
	if as, bs := beamJSON(t, a.Stop), beamJSON(t, b.Stop); as != bs {
		t.Errorf("stop summaries differ across worker counts:\n%s\nvs\n%s", as, bs)
	}
}

// TestBeamStopMatchesShadow cross-checks the prefix property: a shadow
// run simulates every strike, computes the same cuts, and emits the
// truncated re-weighted result — byte-identical Workloads to the
// genuinely stopped run.
func TestBeamStopMatchesShadow(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	stopped := beamStopConfig()
	shadow := beamStopConfig()
	shadow.StopShadow = true
	a, err := Run(stopped, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shadow, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aw, bw := beamJSON(t, a.Workloads), beamJSON(t, b.Workloads); aw != bw {
		t.Errorf("stopped Workloads differ from shadow run:\n%s\nvs\n%s", aw, bw)
	}
	if !b.Stop.Shadow {
		t.Error("shadow summary must be marked")
	}
	if len(a.Stop.Chains) != len(b.Stop.Chains) {
		t.Fatalf("chain summaries: %d vs %d", len(a.Stop.Chains), len(b.Stop.Chains))
	}
	for i := range a.Stop.Chains {
		if a.Stop.Chains[i] != b.Stop.Chains[i] {
			t.Errorf("cuts differ: %+v vs %+v", a.Stop.Chains[i], b.Stop.Chains[i])
		}
	}
}

// TestBeamStopSummaryShape checks the summary arithmetic, that the loose
// margin saved strikes, and that the truncated chains re-weighted their
// events (the stratified estimator's totals stay on the same scale).
func TestBeamStopSummaryShape(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	res, err := Run(beamStopConfig(), []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stop
	if s == nil {
		t.Fatal("stop summary missing")
	}
	if s.TargetMargin != 0.35 || s.Confidence != 0.99 {
		t.Errorf("rule echo = %v @ %v", s.TargetMargin, s.Confidence)
	}
	if s.Planned-s.Executed != s.Saved {
		t.Errorf("saved arithmetic: %d - %d != %d", s.Planned, s.Executed, s.Saved)
	}
	if s.Saved <= 0 {
		t.Errorf("loose margin saved no strikes (executed %d of %d)", s.Executed, s.Planned)
	}
	w := res.Workloads[0]
	if w.SimulatedStrikes != s.Executed {
		t.Errorf("simulated strikes %d != summary executed %d", w.SimulatedStrikes, s.Executed)
	}
	total := 0
	for _, n := range w.StrikeCounts {
		total += n
	}
	if total != w.SimulatedStrikes {
		t.Errorf("strike counts sum %d != simulated %d", total, w.SimulatedStrikes)
	}
	for _, c := range s.Chains {
		if c.Planned != 40 {
			t.Errorf("%v: planned %d", c.Comp, c.Planned)
		}
		if c.Stopped != (c.Executed < c.Planned) {
			t.Errorf("%v: stopped flag inconsistent: %+v", c.Comp, c)
		}
		if c.Stopped && c.Margin > 0.35 {
			t.Errorf("%v: stopped with achieved margin %v above target", c.Comp, c.Margin)
		}
		if c.Executed%8 != 0 && c.Executed != c.Planned {
			t.Errorf("%v: cut %d not at a check boundary", c.Comp, c.Executed)
		}
	}
}

// TestBeamStrikeCountsBaseline: the raw class tallies are recorded on
// ordinary campaigns too (fitcompare's beam-side Poisson intervals need
// them) and sum to the simulated strikes.
func TestBeamStrikeCountsBaseline(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{Seed: 3, BeamHours: 1, StrikesPerComponent: 4}
	w, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range w.StrikeCounts {
		total += n
	}
	if total != w.SimulatedStrikes {
		t.Errorf("strike counts sum %d != simulated %d", total, w.SimulatedStrikes)
	}
	if w.StrikeCounts[fault.ClassMasked] != w.MaskedStrikes {
		t.Errorf("masked count %d != MaskedStrikes %d", w.StrikeCounts[fault.ClassMasked], w.MaskedStrikes)
	}
}
