// Package gefin implements the statistical microarchitectural fault
// injection methodology of the paper (the GeFIN framework over gem5):
// per-component campaigns of uniformly sampled single-bit transient faults
// on the detailed CPU model, outcome classification, AVF estimation, and
// the Leveugle error-margin analysis of Table IV.
package gefin

import (
	"fmt"
	"sync"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/sched"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
	"armsefi/internal/stats"
)

// Config parameterises a fault-injection campaign.
type Config struct {
	Preset soc.Config
	Model  soc.ModelKind
	Scale  bench.Scale
	// FaultsPerComponent is the statistical sample size per component; the
	// paper uses 1,000 (4%% margin at 99%% confidence with p=0.5).
	FaultsPerComponent int
	// Components defaults to all six targets.
	Components []fault.Component
	Seed       int64
	// WarmCaches switches on the warm-start ablation (paper setups always
	// reset caches between injections).
	WarmCaches bool
	// TLBFullEntry samples TLB faults over the whole entry including the
	// virtual tag, instead of the paper's physical-page/permission region.
	// The tag region has near-zero AVF (flips there just cause re-walks),
	// which this ablation demonstrates.
	TLBFullEntry bool
	// CheckpointEvery enables the golden-run checkpoint ladder with the
	// given rung spacing in cycles: each workload's primary workbench
	// captures one instrumented golden replay, and every injection run
	// then fast-forwards to the nearest rung at or below its injection
	// cycle and exits early on golden convergence. Results are
	// bit-identical with the ladder on or off. Zero (the default) keeps
	// the ladder off — every run replays from the post-boot snapshot, the
	// paper's literal methodology. soc.DefaultCheckpointEvery is the
	// recommended spacing.
	CheckpointEvery uint64
	// MaxCheckpoints caps the rungs a ladder may hold (the effective
	// spacing grows to fit); zero picks soc.DefaultMaxCheckpoints.
	MaxCheckpoints int
	// LadderDebug enables the ladder's debug cross-check: every
	// incremental dirty-page DRAM convergence check also runs the exact
	// full-image comparison and panics on disagreement. Process-wide and
	// sticky once set (it flips soc.LadderDebugCompare); slow — for
	// debugging and tests only.
	LadderDebug bool
	// Workers bounds the campaign's worker pool. Each worker owns its own
	// harness.Workbench (machines are stateful and cannot be shared); the
	// full fault list is pre-drawn from the seeded RNG before execution
	// starts, so the Result is bit-identical for every value of Workers.
	// Zero (the default) resolves to runtime.GOMAXPROCS(0); 1 reproduces
	// the sequential engine exactly.
	Workers int
	// Obs attaches the campaign observability layer: a per-injection
	// lifecycle trace, outcome/latency metrics, and pool gauges. Nil (the
	// default) disables all instrumentation at zero cost. Tracing does
	// not perturb results: the fault plan and execution are unchanged.
	Obs *obs.Observer `json:"-"`
	// Prune enables the ACE-style campaign pre-filter: one instrumented
	// golden replay per workload records per-location liveness, each
	// planned injection is classified against the log, and injections
	// proven masked (never-read, overwritten, evicted-clean, or latent at
	// run end) skip the simulator — their predicted verdicts, which are by
	// construction exactly what simulation would conclude, flow into the
	// Result and into trace records tagged predicted=true. Results are
	// byte-identical with pruning on or off, at any worker count.
	Prune bool
	// PruneVerify runs the pre-filter in shadow mode: every injection is
	// predicted AND simulated (with a provenance probe), and any predicted
	// verdict that disagrees with the simulated mechanism or outcome fails
	// the campaign. Slow — the cross-validation harness for Prune; implies
	// Prune.
	PruneVerify bool
	// Dedup enables equivalence-class injection deduplication: planned
	// injections striking the same fault site within the same inter-event
	// quiescent window of the liveness replay are provably
	// outcome-equivalent (see internal/core/equiv), so the engine
	// simulates one canonical representative per class — the lowest plan
	// slot — and materializes its outcome onto every member, tagged
	// dedup=true in trace records. Results are byte-identical with
	// deduplication on or off, at any worker count — the same invariance
	// contract as Prune. Composes with Prune: classes form over the
	// pre-filter's undecided remainder.
	Dedup bool
	// DedupVerify runs deduplication in shadow mode: every class member
	// is simulated (with a provenance probe) and compared against its
	// representative's outcome, mechanism, and context observables; any
	// disagreement fails the campaign. Slow — the cross-validation
	// harness for Dedup; implies Dedup.
	DedupVerify bool
	// Exhaustive replaces statistical sampling with a full sweep: every
	// (fault site x quiescent window) of the selected components is
	// enumerated from the liveness replay — one planned injection per
	// window, weighted by the window's width in cycles — so the AVF is
	// population-exact rather than estimated. FaultsPerComponent is
	// ignored. Local execution only (the plan size is data-dependent, so
	// the campaign service cannot cut shards at submission time), and
	// only over liveness-covered components: the register file,
	// TLBFullEntry sampling, and sequential stopping are rejected.
	Exhaustive bool
	// TargetMargin enables deterministic sequential early stopping: the
	// engine streams per-(component, outcome-class) estimates over the
	// committed plan-order prefix and truncates each component's plan at
	// the first check boundary where every class estimator's Wilson
	// half-width — at an alpha-spending-corrected confidence, so repeated
	// looks stay honest — is at or below this margin. The truncation
	// point is a pure function of the plan-order outcome prefix, so a
	// stopped Result is byte-identical across worker counts and to the
	// matching plan-order prefix of a full run. Zero (the default)
	// disables stopping.
	TargetMargin float64
	// Confidence is the two-sided level for the stopping rule and for
	// reported margins (zero defaults to 0.99, the paper's level).
	Confidence float64
	// StopCheckEvery is the plan-order check-boundary spacing: the
	// sequential rule is evaluated each time a component's committed
	// prefix grows by this many injections. Zero picks
	// DefaultStopCheckEvery. Part of the determinism surface — the same
	// value must be used to reproduce a stopped Result.
	StopCheckEvery int
	// StopShadow executes the entire plan while still computing the
	// sequential cuts, then emits the truncated aggregation: the
	// Workloads of a shadow run are byte-identical to a genuinely
	// stopped run's, which is how CI cross-checks the prefix property
	// without trusting the stop path itself.
	StopShadow bool
	// Provenance attaches a propagation-provenance probe to every
	// injection: the struck location is tainted at flip time, the memory
	// and CPU models report its lifecycle (first consuming read,
	// overwrite, clean eviction, writeback, corrupted commit), and each
	// traced record carries a mechanism verdict explaining its outcome
	// class. Each worker owns one probe, so any Workers value is safe.
	// The probe is purely observational: campaign Results are
	// byte-identical with provenance on or off.
	Provenance bool
}

func (c Config) withDefaults() Config {
	if c.FaultsPerComponent == 0 {
		c.FaultsPerComponent = 1000
	}
	if len(c.Components) == 0 {
		c.Components = fault.Components()
	}
	if c.Model == 0 {
		c.Model = soc.ModelDetailed
	}
	if c.Scale == 0 {
		c.Scale = bench.ScaleTiny
	}
	if c.Preset.Name == "" {
		c.Preset = soc.PresetModel()
	}
	if c.CheckpointEvery > 0 && c.MaxCheckpoints == 0 {
		c.MaxCheckpoints = soc.DefaultMaxCheckpoints
	}
	if c.PruneVerify {
		c.Prune = true
	}
	if c.DedupVerify {
		c.Dedup = true
	}
	if c.TargetMargin > 0 || c.StopShadow {
		// Pin the stop rule's full determinism surface into the config, so
		// a serialized manifest reproduces the identical cuts.
		if c.Confidence == 0 {
			c.Confidence = 0.99
		}
		if c.StopCheckEvery == 0 {
			c.StopCheckEvery = DefaultStopCheckEvery
		}
	}
	if c.LadderDebug {
		// One-way: never cleared here, so concurrent campaigns with the
		// knob off cannot race a debugging campaign's setting away.
		soc.LadderDebugCompare.Store(true)
	}
	c.Workers = sched.Resolve(c.Workers)
	return c
}

// ComponentResult aggregates one workload x component campaign.
type ComponentResult struct {
	Comp     fault.Component
	SizeBits uint64
	N        int
	Counts   map[fault.Class]int
	// ValidStruck counts, per outcome, the injections that landed in live
	// content (a valid cache line / TLB entry) at the injection instant.
	ValidStruck map[fault.Class]int
	// KernelStruck counts, per outcome, the injections that landed in
	// live kernel-owned cache lines — the System-Crash mechanism the
	// paper's Section V analysis identifies.
	KernelStruck map[fault.Class]int
	// Sites, Population, and WeightedCounts are set by exhaustive sweeps
	// only (omitted for sampled campaigns, whose serialized form is
	// unchanged): the enumerated fault-site count, the full
	// site x cycle population (Sites x GoldenCycles), and each outcome
	// class weighted by its (site, window) classes' widths in cycles.
	// WeightedCounts sums to Population exactly — the windows tile the
	// cycle range — so the AVF they imply is population-exact.
	Sites          uint64                 `json:",omitempty"`
	Population     uint64                 `json:",omitempty"`
	WeightedCounts map[fault.Class]uint64 `json:",omitempty"`
}

// AVF returns the architectural vulnerability factor: the fraction of
// injected faults with any non-masked outcome. For an exhaustive sweep
// it is population-exact — the window-width-weighted non-masked share of
// the full site x cycle population.
func (r ComponentResult) AVF() float64 {
	if r.Population > 0 {
		return float64(r.Population-r.WeightedCounts[fault.ClassMasked]) / float64(r.Population)
	}
	if r.N == 0 {
		return 0
	}
	return float64(r.N-r.Counts[fault.ClassMasked]) / float64(r.N)
}

// ClassFraction returns the fraction of faults with the given outcome.
func (r ComponentResult) ClassFraction(c fault.Class) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Counts[c]) / float64(r.N)
}

// ErrorMargin computes the re-adjusted Leveugle margin at 99%% confidence:
// p is the measured AVF shifted by the initial (p=0.5) margin, per the
// paper's Table IV procedure.
func (r ComponentResult) ErrorMargin() float64 {
	if r.Population > 0 {
		return 0 // an exhaustive sweep measures the population, not a sample
	}
	population := float64(r.SizeBits) * 1e6 // bits x cycles population (effectively infinite)
	initial := stats.MarginOfError(float64(r.N), population, stats.Z99, 0.5)
	p := r.AVF() + initial
	if p > 0.5 {
		p = 0.5 // margin is maximal at p=0.5
	}
	if p <= 0 {
		p = initial
	}
	return stats.MarginOfError(float64(r.N), population, stats.Z99, p)
}

// WorkloadResult aggregates one workload's campaign across components.
type WorkloadResult struct {
	Workload     string
	Scale        bench.Scale
	GoldenCycles uint64
	GoldenInstrs uint64
	Components   []ComponentResult
}

// Component returns the result for one component.
func (w *WorkloadResult) Component(c fault.Component) (ComponentResult, bool) {
	for _, r := range w.Components {
		if r.Comp == c {
			return r, true
		}
	}
	return ComponentResult{}, false
}

// PruneSummary reports what the campaign pre-filter did. It lives
// beside Workloads, never inside them: the determinism contract pins
// Workloads byte-identical with pruning on or off, and the summary is
// exactly the part that differs.
type PruneSummary struct {
	// Predicted counts injections proven masked by the pre-filter and
	// (outside shadow mode) excluded from simulation; Simulated counts
	// the injections that ran on the simulator.
	Predicted int `json:"predicted"`
	Simulated int `json:"simulated"`
	// ByMechanism counts predictions per masking-mechanism verdict.
	ByMechanism map[string]int `json:"by_mechanism,omitempty"`
	// Verified and Mismatches report shadow-mode cross-validation:
	// predictions checked against their simulated mechanism/outcome, and
	// disagreements found (any mismatch also fails the campaign).
	Verified   int `json:"verified,omitempty"`
	Mismatches int `json:"mismatches,omitempty"`
}

// merge folds another summary into s.
func (s *PruneSummary) merge(o *PruneSummary) {
	if o == nil {
		return
	}
	s.Predicted += o.Predicted
	s.Simulated += o.Simulated
	s.Verified += o.Verified
	s.Mismatches += o.Mismatches
	for m, n := range o.ByMechanism {
		if s.ByMechanism == nil {
			s.ByMechanism = make(map[string]int)
		}
		s.ByMechanism[m] += n
	}
}

// PredictedFraction returns the fraction of planned injections the
// pre-filter decided. In shadow mode every injection simulates, so the
// plan size is Simulated rather than the sum.
func (s *PruneSummary) PredictedFraction() float64 {
	if s == nil {
		return 0
	}
	total := s.Predicted + s.Simulated
	if s.Verified > 0 {
		total = s.Simulated
	}
	if total == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(total)
}

// DedupSummary reports what equivalence-class deduplication did. Like
// PruneSummary it lives beside Workloads, never inside them: Workloads
// stay byte-identical with deduplication on or off, and the summary is
// exactly the part that differs.
type DedupSummary struct {
	// Classes counts the multi-member equivalence classes; Deduped the
	// member injections resolved from their class representative without
	// simulation; Simulated the injections that ran on the simulator
	// (representatives, singleton classes, and undedupable sites).
	// MaxClass is the largest class size. Classes and MaxClass are zero
	// for remotely assembled campaigns: shards keep per-shard class
	// tables that do not reassemble into a global partition.
	Classes   int `json:"classes,omitempty"`
	Deduped   int `json:"deduped"`
	Simulated int `json:"simulated"`
	MaxClass  int `json:"max_class,omitempty"`
	// Verified and Mismatches report shadow-mode cross-validation
	// (DedupVerify): members simulated and compared against their
	// representative's outcome, and disagreements found (any mismatch
	// also fails the campaign).
	Verified   int `json:"verified,omitempty"`
	Mismatches int `json:"mismatches,omitempty"`
}

// merge folds another summary into s.
func (s *DedupSummary) merge(o *DedupSummary) {
	if o == nil {
		return
	}
	s.Classes += o.Classes
	s.Deduped += o.Deduped
	s.Simulated += o.Simulated
	s.Verified += o.Verified
	s.Mismatches += o.Mismatches
	if o.MaxClass > s.MaxClass {
		s.MaxClass = o.MaxClass
	}
}

// DedupedFraction returns the fraction of dedup-considered injections
// resolved from a representative. In shadow mode every member simulates,
// so the denominator is Simulated rather than the sum.
func (s *DedupSummary) DedupedFraction() float64 {
	if s == nil {
		return 0
	}
	total := s.Deduped + s.Simulated
	if s.Verified > 0 {
		total = s.Simulated
	}
	if total == 0 {
		return 0
	}
	return float64(s.Deduped) / float64(total)
}

// SweepComponent reports one workload x component slice of an exhaustive
// sweep's enumeration: how the full site x cycle population collapsed
// into (site, window) equivalence classes.
type SweepComponent struct {
	Workload string          `json:"workload"`
	Comp     fault.Component `json:"comp"`
	// Sites is the enumerated fault-site count; Windows the (site,
	// window) classes actually simulated; Population = Sites x
	// GoldenCycles, the site x cycle pairs the windows tile exactly.
	Sites      uint64 `json:"sites"`
	Windows    int    `json:"windows"`
	Population uint64 `json:"population"`
	// MeanWidth and MaxWidth describe the class sizes in cycles —
	// Population/Windows is the sweep's compression ratio over naive
	// per-cycle enumeration.
	MeanWidth float64 `json:"mean_width"`
	MaxWidth  uint64  `json:"max_width"`
	// AVF is the population-exact architectural vulnerability factor.
	AVF float64 `json:"avf"`
}

// SweepSummary reports an exhaustive sweep's enumeration statistics,
// beside Workloads like the other summaries.
type SweepSummary struct {
	Components []SweepComponent `json:"components"`
}

// merge appends another summary's components in call order.
func (s *SweepSummary) merge(o *SweepSummary) {
	if o != nil {
		s.Components = append(s.Components, o.Components...)
	}
}

// Result is a full campaign: every workload x component x fault.
type Result struct {
	Config    Config
	Workloads []WorkloadResult
	// Prune summarises the pre-filter's predicted/simulated split (pruned
	// campaigns only; nil otherwise). Deliberately outside Workloads,
	// which stay byte-identical with pruning on or off.
	Prune *PruneSummary `json:",omitempty"`
	// Dedup summarises equivalence-class deduplication (deduped campaigns
	// only; nil otherwise), outside Workloads for the same reason.
	Dedup *DedupSummary `json:",omitempty"`
	// Sweep reports an exhaustive sweep's enumeration statistics
	// (exhaustive campaigns only; nil otherwise).
	Sweep *SweepSummary `json:",omitempty"`
	// Stop summarises the sequential stopping rule's cuts and achieved
	// margins (campaigns with TargetMargin set only; nil otherwise).
	// Also outside Workloads, which stay byte-identical to the matching
	// plan-order prefix of a full run.
	Stop *StopSummary `json:",omitempty"`
}

// Workload returns a workload's result by name.
func (r *Result) Workload(name string) (*WorkloadResult, bool) {
	for i := range r.Workloads {
		if r.Workloads[i].Workload == name {
			return &r.Workloads[i], true
		}
	}
	return nil, false
}

// ProgressEvent reports one completed injection. The engine serialises
// emissions under a campaign-wide mutex, so a callback's own state needs
// no locking — but the callback may be invoked from any worker goroutine,
// so it must not rely on goroutine identity, and it should return quickly
// (every worker stalls while it runs).
type ProgressEvent struct {
	Workload string
	Comp     fault.Component
	// Done and Total count injections into this workload x component.
	Done, Total int
	// CampaignDone and CampaignTotal count injections across every
	// workload of the Run (or just this workload under RunWorkload).
	CampaignDone, CampaignTotal int
	// Workers is the number of live workers at the instant of the event;
	// Rate is the aggregate campaign throughput in injections/sec (divide
	// by Workers for per-worker throughput), and ETA the remaining wall
	// time it implies.
	Workers int
	Rate    float64
	ETA     time.Duration
}

// Progress receives campaign progress callbacks; see ProgressEvent for the
// concurrency contract.
type Progress func(ProgressEvent)

// validate rejects configurations the engine cannot honour — today only
// exhaustive-sweep constraints: the plan is data-dependent (no remote
// sharding, no sequential stopping over a uniform per-component plan)
// and enumeration only covers liveness-modelable sites.
func (c Config) validate() error {
	if !c.Exhaustive {
		return nil
	}
	if c.TargetMargin > 0 || c.StopShadow {
		return fmt.Errorf("gefin: exhaustive sweeps measure the population exactly; sequential stopping does not apply")
	}
	if c.TLBFullEntry {
		return fmt.Errorf("gefin: exhaustive sweeps cannot enumerate full TLB entries (virtual-tag flips change which entries match, which the liveness stream cannot model)")
	}
	for _, comp := range c.Components {
		if comp == fault.CompRegFile {
			return fmt.Errorf("gefin: exhaustive sweeps cover liveness-recorded components only (caches and TLBs); %v is not", comp)
		}
	}
	return nil
}

// RunWorkload executes the campaign for a single workload, using up to
// cfg.Workers parallel workbenches.
func RunWorkload(cfg Config, spec bench.Spec, progress Progress) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// The caller's goroutine drives the primary workbench; the pool holds
	// only the extra-worker slots.
	pool := sched.NewPool(cfg.Workers - 1)
	cfg.Obs.ObservePool(pool)
	res, _, err := runWorkload(cfg, spec, pool, newEmitter(progress, cfg.Obs))
	return res, err
}

// Run executes the campaign for a set of workloads. Workloads run
// concurrently, bounded — together with their per-workload extra workers —
// by cfg.Workers total live machines.
func Run(cfg Config, specs []bench.Spec, progress Progress) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pool := sched.NewPool(cfg.Workers)
	cfg.Obs.ObservePool(pool)
	em := newEmitter(progress, cfg.Obs)
	results := make([]*WorkloadResult, len(specs))
	sides := make([]sideSummaries, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec bench.Spec) {
			defer wg.Done()
			pool.Acquire() // the workload's primary worker slot
			defer pool.Release()
			results[i], sides[i], errs[i] = runWorkload(cfg, spec, pool, em)
		}(i, spec)
	}
	wg.Wait()
	res := &Result{Config: cfg}
	for i := range specs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Workloads = append(res.Workloads, *results[i])
	}
	// Every side summary merges in spec order, outside Workloads, so
	// optimised and plain campaigns stay byte-identical where CI diffs
	// them.
	if cfg.Prune {
		total := &PruneSummary{ByMechanism: make(map[string]int)}
		for _, s := range sides {
			total.merge(s.prune)
		}
		res.Prune = total
	}
	if cfg.Dedup {
		total := &DedupSummary{}
		for _, s := range sides {
			total.merge(s.dedup)
		}
		res.Dedup = total
	}
	if cfg.Exhaustive {
		total := &SweepSummary{}
		for _, s := range sides {
			total.merge(s.sweep)
		}
		res.Sweep = total
	}
	if cfg.TargetMargin > 0 {
		total := &StopSummary{}
		for _, s := range sides {
			total.merge(s.stop)
		}
		res.Stop = total
	}
	return res, nil
}

// hashString is a small FNV-1a for seeding per-workload streams.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
