// Package gefin implements the statistical microarchitectural fault
// injection methodology of the paper (the GeFIN framework over gem5):
// per-component campaigns of uniformly sampled single-bit transient faults
// on the detailed CPU model, outcome classification, AVF estimation, and
// the Leveugle error-margin analysis of Table IV.
package gefin

import (
	"fmt"
	"math/rand"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/mem"
	"armsefi/internal/soc"
	"armsefi/internal/stats"
)

// Config parameterises a fault-injection campaign.
type Config struct {
	Preset soc.Config
	Model  soc.ModelKind
	Scale  bench.Scale
	// FaultsPerComponent is the statistical sample size per component; the
	// paper uses 1,000 (4%% margin at 99%% confidence with p=0.5).
	FaultsPerComponent int
	// Components defaults to all six targets.
	Components []fault.Component
	Seed       int64
	// WarmCaches switches on the warm-start ablation (paper setups always
	// reset caches between injections).
	WarmCaches bool
	// TLBFullEntry samples TLB faults over the whole entry including the
	// virtual tag, instead of the paper's physical-page/permission region.
	// The tag region has near-zero AVF (flips there just cause re-walks),
	// which this ablation demonstrates.
	TLBFullEntry bool
}

func (c Config) withDefaults() Config {
	if c.FaultsPerComponent == 0 {
		c.FaultsPerComponent = 1000
	}
	if len(c.Components) == 0 {
		c.Components = fault.Components()
	}
	if c.Model == 0 {
		c.Model = soc.ModelDetailed
	}
	if c.Scale == 0 {
		c.Scale = bench.ScaleTiny
	}
	if c.Preset.Name == "" {
		c.Preset = soc.PresetModel()
	}
	return c
}

// ComponentResult aggregates one workload x component campaign.
type ComponentResult struct {
	Comp     fault.Component
	SizeBits uint64
	N        int
	Counts   map[fault.Class]int
	// ValidStruck counts, per outcome, the injections that landed in live
	// content (a valid cache line / TLB entry) at the injection instant.
	ValidStruck map[fault.Class]int
	// KernelStruck counts, per outcome, the injections that landed in
	// live kernel-owned cache lines — the System-Crash mechanism the
	// paper's Section V analysis identifies.
	KernelStruck map[fault.Class]int
}

// AVF returns the architectural vulnerability factor: the fraction of
// injected faults with any non-masked outcome.
func (r ComponentResult) AVF() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.N-r.Counts[fault.ClassMasked]) / float64(r.N)
}

// ClassFraction returns the fraction of faults with the given outcome.
func (r ComponentResult) ClassFraction(c fault.Class) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Counts[c]) / float64(r.N)
}

// ErrorMargin computes the re-adjusted Leveugle margin at 99%% confidence:
// p is the measured AVF shifted by the initial (p=0.5) margin, per the
// paper's Table IV procedure.
func (r ComponentResult) ErrorMargin() float64 {
	population := float64(r.SizeBits) * 1e6 // bits x cycles population (effectively infinite)
	initial := stats.MarginOfError(float64(r.N), population, stats.Z99, 0.5)
	p := r.AVF() + initial
	if p > 0.5 {
		p = 0.5 // margin is maximal at p=0.5
	}
	if p <= 0 {
		p = initial
	}
	return stats.MarginOfError(float64(r.N), population, stats.Z99, p)
}

// WorkloadResult aggregates one workload's campaign across components.
type WorkloadResult struct {
	Workload     string
	Scale        bench.Scale
	GoldenCycles uint64
	GoldenInstrs uint64
	Components   []ComponentResult
}

// Component returns the result for one component.
func (w *WorkloadResult) Component(c fault.Component) (ComponentResult, bool) {
	for _, r := range w.Components {
		if r.Comp == c {
			return r, true
		}
	}
	return ComponentResult{}, false
}

// Result is a full campaign: every workload x component x fault.
type Result struct {
	Config    Config
	Workloads []WorkloadResult
}

// Workload returns a workload's result by name.
func (r *Result) Workload(name string) (*WorkloadResult, bool) {
	for i := range r.Workloads {
		if r.Workloads[i].Workload == name {
			return &r.Workloads[i], true
		}
	}
	return nil, false
}

// Progress receives campaign progress callbacks; any field may be ignored.
type Progress func(workload string, comp fault.Component, done, total int)

// RunWorkload executes the campaign for a single workload.
func RunWorkload(cfg Config, spec bench.Spec, progress Progress) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	built, err := spec.Build(soc.UserAsmConfig(), cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("gefin: %w", err)
	}
	wb, err := harness.New(cfg.Preset, cfg.Model, built)
	if err != nil {
		return nil, fmt.Errorf("gefin: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hashString(spec.Name))))
	out := &WorkloadResult{
		Workload:     spec.Name,
		Scale:        cfg.Scale,
		GoldenCycles: wb.Golden.Cycles,
		GoldenInstrs: wb.Golden.Instructions,
	}
	for _, comp := range cfg.Components {
		size := fault.SizeBits(wb.Machine, comp)
		res := ComponentResult{
			Comp:         comp,
			SizeBits:     size,
			N:            cfg.FaultsPerComponent,
			Counts:       make(map[fault.Class]int, fault.NumClasses),
			ValidStruck:  make(map[fault.Class]int, fault.NumClasses),
			KernelStruck: make(map[fault.Class]int, fault.NumClasses),
		}
		for i := 0; i < cfg.FaultsPerComponent; i++ {
			bit := uint64(rng.Int63n(int64(size)))
			if !cfg.TLBFullEntry && (comp == fault.CompITLB || comp == fault.CompDTLB) {
				// GeFIN targets the physical page and permission bits of
				// the TLB entries (Section V-B).
				entry := bit / mem.TLBEntryBits
				bit = entry*mem.TLBEntryBits +
					mem.TLBPhysRegionStart + uint64(rng.Intn(mem.TLBPhysRegionBits))
			}
			f := fault.Fault{
				Comp:  comp,
				Bit:   bit,
				Cycle: uint64(rng.Int63n(int64(wb.Golden.Cycles))),
			}
			class, ctx := wb.RunFaultDetail(f, cfg.WarmCaches)
			res.Counts[class]++
			if ctx.LineValid {
				res.ValidStruck[class]++
			}
			if ctx.KernelOwned() {
				res.KernelStruck[class]++
			}
			if progress != nil {
				progress(spec.Name, comp, i+1, cfg.FaultsPerComponent)
			}
		}
		out.Components = append(out.Components, res)
	}
	return out, nil
}

// Run executes the campaign for a set of workloads.
func Run(cfg Config, specs []bench.Spec, progress Progress) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}
	for _, spec := range specs {
		w, err := RunWorkload(cfg, spec, progress)
		if err != nil {
			return nil, err
		}
		res.Workloads = append(res.Workloads, *w)
	}
	return res, nil
}

// hashString is a small FNV-1a for seeding per-workload streams.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
