package gefin

import (
	"encoding/json"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// dedupConfig samples the DTLB heavily enough for the seeded plan to
// collide into shared equivalence classes (seed 5 yields multi-member
// classes on crc32 and matmul at full and -short sample sizes), plus the
// register file, which is never dedupable.
func dedupConfig(seed int64) Config {
	return Config{
		FaultsPerComponent: faultsN(200),
		Seed:               seed,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
	}
}

// TestDedupResultInvariance is the deduplicator's campaign-level
// contract: the aggregated WorkloadResult is byte-identical with dedup
// off or on, at one worker or many, with or without the checkpoint
// ladder, and composed with the ACE pre-filter — materializing a
// representative's outcome onto its class members is purely an execution
// optimisation.
func TestDedupResultInvariance(t *testing.T) {
	for _, workload := range []string{"crc32", "matmul"} {
		cfg := dedupConfig(5)
		cfg.Workers = 1
		ref := runSmall(t, cfg, workload)
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, arm := range []struct {
			name    string
			workers int
			every   uint64
			prune   bool
		}{
			{"workers=1", 1, 0, false},
			{"workers=4", 4, 0, false},
			{"ladder", 4, soc.DefaultCheckpointEvery, false},
			{"pruned", 4, soc.DefaultCheckpointEvery, true},
		} {
			dcfg := cfg
			dcfg.Workers = arm.workers
			dcfg.CheckpointEvery = arm.every
			dcfg.Prune = arm.prune
			dcfg.Dedup = true
			res := runSmall(t, dcfg, workload)
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(refJSON) {
				equalComponentResults(t, ref, res) // pinpoint the diff
				t.Fatalf("%s %s: deduped result not byte-identical to plain", workload, arm.name)
			}
		}
	}
}

// TestDedupSummarySplit checks the deduped/simulated bookkeeping: the
// split covers the whole plan, the sampled plan actually collides into
// classes, and the split never leaks into Workloads.
func TestDedupSummarySplit(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := dedupConfig(5).withDefaults()
	cfg.Dedup = true
	res, err := Run(cfg, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dedup == nil {
		t.Fatal("deduped Run returned no DedupSummary")
	}
	s := res.Dedup
	if want := PlanLen(cfg); s.Deduped+s.Simulated != want {
		t.Fatalf("split %d deduped + %d simulated != plan %d", s.Deduped, s.Simulated, want)
	}
	if s.Deduped == 0 || s.Classes == 0 {
		t.Fatalf("sampled plan formed no classes: %+v", s)
	}
	if s.MaxClass < 2 {
		t.Fatalf("max class size %d < 2", s.MaxClass)
	}
	if s.Verified != 0 || s.Mismatches != 0 {
		t.Fatalf("non-shadow run reports verification: %+v", s)
	}
	if f := s.DedupedFraction(); f <= 0 || f >= 1 {
		t.Fatalf("deduped fraction %f out of (0,1)", f)
	}
}

// TestDedupVerifyShadowMode is the cross-validation harness: shadow mode
// simulates every class member AND materializes nothing, comparing each
// member's simulated verdict against its representative's. Zero
// mismatches at one worker and four, on both workloads, validates the
// equivalence-class construction against ground truth.
func TestDedupVerifyShadowMode(t *testing.T) {
	for _, workload := range []string{"crc32", "matmul"} {
		for _, workers := range []int{1, 4} {
			cfg := dedupConfig(5)
			cfg.Workers = workers
			cfg.CheckpointEvery = soc.DefaultCheckpointEvery
			cfg.DedupVerify = true
			spec, _ := bench.ByName(workload)
			res, err := Run(cfg, []bench.Spec{spec}, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", workload, workers, err)
			}
			s := res.Dedup
			if s == nil || s.Deduped == 0 {
				t.Fatalf("%s workers=%d: shadow mode formed no classes", workload, workers)
			}
			if s.Verified != s.Deduped || s.Mismatches != 0 {
				t.Fatalf("%s workers=%d: verified %d/%d with %d mismatches",
					workload, workers, s.Verified, s.Deduped, s.Mismatches)
			}
			if want := PlanLen(cfg.withDefaults()); s.Simulated != want {
				t.Fatalf("%s workers=%d: shadow mode simulated %d of %d", workload, workers, s.Simulated, want)
			}
		}
	}
}

// TestDedupShardInvariance extends the contract to the campaign-service
// path: shards executed by a deduplicating runner assemble into the same
// WorkloadResult as a plain in-process run. Representatives are
// shard-local — a full-plan shard reproduces the whole partition, narrow
// shards re-simulate cross-shard members — so assembly stays bit-exact
// at any shard geometry.
func TestDedupShardInvariance(t *testing.T) {
	cfg := dedupConfig(5)
	cfg.CheckpointEvery = soc.DefaultCheckpointEvery
	spec, _ := bench.ByName("crc32")
	ref := runSmall(t, cfg, "crc32")

	dcfg := cfg
	dcfg.Dedup = true
	n := PlanLen(dcfg)
	for _, width := range []int{7, n} {
		r := NewShardRunner(dcfg)
		var outs []ShardOutcome
		var meta ShardMeta
		for lo := 0; lo < n; lo += width {
			hi := lo + width
			if hi > n {
				hi = n
			}
			part, m, err := r.RunShard(spec, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, part...)
			meta = m
		}
		res, err := AssembleWorkload(dcfg, "crc32", meta, outs)
		if err != nil {
			t.Fatal(err)
		}
		equalComponentResults(t, ref, res)

		s := ShardDedupSummary(outs)
		if s.Deduped+s.Simulated != n {
			t.Fatalf("width %d: shard split %d/%d over plan %d", width, s.Deduped, s.Simulated, n)
		}
		if width == n {
			// One full-range shard sees every class whole, so the wire
			// outcomes carry the complete dedup split.
			if s.Deduped == 0 {
				t.Fatal("full-range shard materialized nothing")
			}
			if total := MergeDedupSummaries([]*DedupSummary{s, nil}); total.Deduped != s.Deduped {
				t.Fatalf("merge dropped materializations: %d vs %d", total.Deduped, s.Deduped)
			}
		}
	}

	// Shadow mode on the shard path: every member simulates and the
	// runner fails the shard on any disagreement with its representative.
	vcfg := cfg
	vcfg.DedupVerify = true
	vr := NewShardRunner(vcfg)
	if _, _, err := vr.RunShard(spec, 0, n); err != nil {
		t.Fatalf("shard shadow mode: %v", err)
	}
}
