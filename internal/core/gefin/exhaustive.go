// Exhaustive-sweep planning: instead of sampling FaultsPerComponent
// injections per component, enumerate every (fault site x quiescent
// window) the liveness replay can model — one planned injection per
// window, executed at the window's first cycle and weighted by the
// window's width — so the weighted aggregation measures the full
// site x cycle population exactly. This is the equivalence-class idea
// turned around: a sampled campaign collapses colliding draws into
// classes, an exhaustive sweep enumerates the classes directly.

package gefin

import (
	"fmt"

	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/mem"
)

// exhaustivePlan is the data-dependent plan of a full sweep.
type exhaustivePlan struct {
	plan []plannedFault
	// weights holds each slot's window width in cycles (its equivalence
	// class size over the cycle axis); perComp the slot count per
	// cfg.Components entry; sites the enumerated site count per entry.
	weights []uint64
	perComp []int
	sites   []uint64
}

// exhaustivePlanFor enumerates the full sweep plan from the liveness
// replay. Like planFor it is a pure function of (cfg, workload
// liveness), so reruns derive the identical plan; unlike planFor the
// plan size is data-dependent. Sites whose event recording overflowed
// are an error — a truncated stream cannot tile the cycle range, so the
// sweep would silently stop being population-exact. TLB bits outside
// the modelable physical-page/permission region (the VPN field and the
// valid bit, whose flips change which entries match) are excluded from
// the enumerable population by construction.
func exhaustivePlanFor(cfg Config, wb *harness.Workbench) (*exhaustivePlan, []uint64, error) {
	log := wb.Liveness
	maxCycle := wb.Golden.Cycles
	sizes := make([]uint64, len(cfg.Components))
	ep := &exhaustivePlan{
		perComp: make([]int, len(cfg.Components)),
		sites:   make([]uint64, len(cfg.Components)),
	}
	for ci, comp := range cfg.Components {
		ci, comp := ci, comp
		sizes[ci] = fault.SizeBits(wb.Machine, comp)
		site := func(bit uint64) func(start, width uint64) {
			return func(start, width uint64) {
				ep.plan = append(ep.plan, plannedFault{comp: ci, f: fault.Fault{Comp: comp, Bit: bit, Cycle: start}})
				ep.weights = append(ep.weights, width)
				ep.perComp[ci]++
			}
		}
		switch comp {
		case fault.CompL1I, fault.CompL1D, fault.CompL2:
			var r *mem.CacheLiveness
			switch comp {
			case fault.CompL1I:
				r = log.L1I
			case fault.CompL1D:
				r = log.L1D
			default:
				r = log.L2
			}
			for bit := uint64(0); bit < sizes[ci]; bit++ {
				if !r.EnumWindows(bit, maxCycle, site(bit)) {
					return nil, nil, fmt.Errorf("gefin: exhaustive: %v liveness recording overflowed at bit %d; the sweep cannot cover this workload", comp, bit)
				}
				ep.sites[ci]++
			}
		case fault.CompITLB, fault.CompDTLB:
			r := log.ITLB
			if comp == fault.CompDTLB {
				r = log.DTLB
			}
			entries := sizes[ci] / mem.TLBEntryBits
			for e := uint64(0); e < entries; e++ {
				for b := uint64(mem.TLBPhysRegionStart); b < mem.TLBPhysRegionStart+mem.TLBModelBits; b++ {
					bit := e*mem.TLBEntryBits + b
					if !r.EnumWindows(bit, maxCycle, site(bit)) {
						return nil, nil, fmt.Errorf("gefin: exhaustive: %v liveness recording overflowed at entry %d; the sweep cannot cover this workload", comp, e)
					}
					ep.sites[ci]++
				}
			}
		}
	}
	return ep, sizes, nil
}

// aggregateExhaustive folds per-slot outcomes into a population-exact
// workload result: each window's outcome counts once unweighted (N and
// Counts describe the simulated windows) and once weighted by its width
// in cycles (WeightedCounts sums to Population = Sites x GoldenCycles
// exactly, since the windows tile the cycle range per site). The sweep
// summary reports the enumeration statistics beside it.
func aggregateExhaustive(cfg Config, workload string, goldenCycles, goldenInstrs uint64, sizes []uint64, ep *exhaustivePlan, outcomes []outcome) (*WorkloadResult, *SweepSummary) {
	out := &WorkloadResult{
		Workload:     workload,
		Scale:        cfg.Scale,
		GoldenCycles: goldenCycles,
		GoldenInstrs: goldenInstrs,
	}
	for ci, comp := range cfg.Components {
		out.Components = append(out.Components, ComponentResult{
			Comp:           comp,
			SizeBits:       sizes[ci],
			N:              ep.perComp[ci],
			Sites:          ep.sites[ci],
			Population:     ep.sites[ci] * goldenCycles,
			Counts:         make(map[fault.Class]int, fault.NumClasses),
			ValidStruck:    make(map[fault.Class]int, fault.NumClasses),
			KernelStruck:   make(map[fault.Class]int, fault.NumClasses),
			WeightedCounts: make(map[fault.Class]uint64, fault.NumClasses),
		})
	}
	maxWidth := make([]uint64, len(cfg.Components))
	for i, o := range outcomes {
		res := &out.Components[ep.plan[i].comp]
		res.Counts[o.class]++
		res.WeightedCounts[o.class] += ep.weights[i]
		if o.valid {
			res.ValidStruck[o.class]++
		}
		if o.kernel {
			res.KernelStruck[o.class]++
		}
		if w := ep.weights[i]; w > maxWidth[ep.plan[i].comp] {
			maxWidth[ep.plan[i].comp] = w
		}
	}
	sweep := &SweepSummary{}
	for ci, res := range out.Components {
		sc := SweepComponent{
			Workload:   workload,
			Comp:       res.Comp,
			Sites:      res.Sites,
			Windows:    res.N,
			Population: res.Population,
			MaxWidth:   maxWidth[ci],
			AVF:        res.AVF(),
		}
		if res.N > 0 {
			sc.MeanWidth = float64(res.Population) / float64(res.N)
		}
		sweep.Components = append(sweep.Components, sc)
	}
	return out, sweep
}
