package gefin

import (
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/soc"
)

// faultsN trims statistical sample sizes in -short mode (notably the CI
// race-detector job, where every injection run costs ~10-20x): the
// properties under test hold at any sample size.
func faultsN(full int) int {
	if testing.Short() {
		return (full + 2) / 3
	}
	return full
}

func smallConfig() Config {
	return Config{FaultsPerComponent: faultsN(25), Seed: 77}
}

func runSmall(t *testing.T, cfg Config, workload string) *WorkloadResult {
	t.Helper()
	spec, ok := bench.ByName(workload)
	if !ok {
		t.Fatalf("workload %s missing", workload)
	}
	res, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignShape(t *testing.T) {
	res := runSmall(t, smallConfig(), "qsort")
	if len(res.Components) != fault.NumComponents {
		t.Fatalf("components = %d", len(res.Components))
	}
	for _, c := range res.Components {
		total := 0
		for _, n := range c.Counts {
			total += n
		}
		if total != c.N {
			t.Errorf("%v: counts sum %d != N %d", c.Comp, total, c.N)
		}
		if avf := c.AVF(); avf < 0 || avf > 1 {
			t.Errorf("%v: AVF %f out of range", c.Comp, avf)
		}
		if m := c.ErrorMargin(); m <= 0 || m > 0.5 {
			t.Errorf("%v: margin %f out of range", c.Comp, m)
		}
		if c.SizeBits == 0 {
			t.Errorf("%v: zero size", c.Comp)
		}
	}
	if res.GoldenCycles == 0 || res.GoldenInstrs == 0 {
		t.Error("golden run metrics missing")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := runSmall(t, smallConfig(), "crc32")
	b := runSmall(t, smallConfig(), "crc32")
	for i := range a.Components {
		for cls, n := range a.Components[i].Counts {
			if b.Components[i].Counts[cls] != n {
				t.Fatalf("%v %v: %d vs %d — campaign not reproducible",
					a.Components[i].Comp, cls, n, b.Components[i].Counts[cls])
			}
		}
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 78
	a := runSmall(t, smallConfig(), "crc32")
	b := runSmall(t, cfg2, "crc32")
	same := true
	for i := range a.Components {
		for cls, n := range a.Components[i].Counts {
			if b.Components[i].Counts[cls] != n {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical campaigns (suspicious)")
	}
}

// TestTLBTagAblation verifies the paper's observation that virtual-tag
// flips are orders of magnitude more benign than physical-page flips.
func TestTLBTagRegionSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultsPerComponent = faultsN(30)
	cfg.Components = []fault.Component{fault.CompDTLB}
	phys := runSmall(t, cfg, "qsort")

	cfg.TLBFullEntry = true
	full := runSmall(t, cfg, "qsort")

	pa, _ := phys.Component(fault.CompDTLB)
	fa, _ := full.Component(fault.CompDTLB)
	// Full-entry sampling dilutes faults over the ~half of the entry that
	// is the harmless virtual tag, so its AVF must not exceed the
	// physical-region AVF (ties possible at small samples).
	if fa.AVF() > pa.AVF() {
		t.Errorf("full-entry AVF %f > physical-region AVF %f", fa.AVF(), pa.AVF())
	}
}

func TestWorkloadLookup(t *testing.T) {
	res := &Result{Workloads: []WorkloadResult{{Workload: "a"}, {Workload: "b"}}}
	if w, ok := res.Workload("b"); !ok || w.Workload != "b" {
		t.Error("lookup failed")
	}
	if _, ok := res.Workload("zzz"); ok {
		t.Error("phantom workload found")
	}
}

func TestProgressCallback(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{FaultsPerComponent: 3, Seed: 5, Components: []fault.Component{fault.CompRegFile}}
	// The engine serialises emissions, so the closure's state needs no lock
	// even at Workers > 1.
	cfg.Workers = 2
	calls := 0
	lastDone := 0
	_, err := RunWorkload(cfg, spec, func(ev ProgressEvent) {
		calls++
		if ev.Workload != "crc32" || ev.Comp != fault.CompRegFile || ev.Total != 3 {
			t.Errorf("bad progress: %s %v %d/%d", ev.Workload, ev.Comp, ev.Done, ev.Total)
		}
		if ev.CampaignTotal != 3 || ev.CampaignDone != lastDone+1 {
			t.Errorf("bad campaign counts: %d/%d after %d", ev.CampaignDone, ev.CampaignTotal, lastDone)
		}
		lastDone = ev.CampaignDone
		if ev.Workers < 1 || ev.Workers > 2 {
			t.Errorf("workers = %d", ev.Workers)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("progress called %d times, want 3", calls)
	}
	if lastDone != 3 {
		t.Errorf("final CampaignDone = %d, want 3", lastDone)
	}
}

// equalComponentResults asserts two workload results agree on every
// per-component outcome map — the parallel engine's determinism contract.
func equalComponentResults(t *testing.T, a, b *WorkloadResult) {
	t.Helper()
	if len(a.Components) != len(b.Components) {
		t.Fatalf("component counts differ: %d vs %d", len(a.Components), len(b.Components))
	}
	for i := range a.Components {
		ca, cb := a.Components[i], b.Components[i]
		if ca.Comp != cb.Comp || ca.SizeBits != cb.SizeBits || ca.N != cb.N {
			t.Fatalf("component %d headers differ: %+v vs %+v", i, ca, cb)
		}
		for _, cls := range fault.Classes() {
			if ca.Counts[cls] != cb.Counts[cls] {
				t.Errorf("%v %v: counts %d vs %d", ca.Comp, cls, ca.Counts[cls], cb.Counts[cls])
			}
			if ca.ValidStruck[cls] != cb.ValidStruck[cls] {
				t.Errorf("%v %v: valid-struck %d vs %d", ca.Comp, cls, ca.ValidStruck[cls], cb.ValidStruck[cls])
			}
			if ca.KernelStruck[cls] != cb.KernelStruck[cls] {
				t.Errorf("%v %v: kernel-struck %d vs %d", ca.Comp, cls, ca.KernelStruck[cls], cb.KernelStruck[cls])
			}
		}
	}
}

// TestWorkerCountInvariance is the centrepiece contract of the parallel
// engine: the same seed produces a bit-identical campaign at any worker
// count, because faults are pre-drawn before execution is sharded.
func TestWorkerCountInvariance(t *testing.T) {
	seq := smallConfig()
	seq.Workers = 1
	par := smallConfig()
	par.Workers = 4
	a := runSmall(t, seq, "crc32")
	b := runSmall(t, par, "crc32")
	if a.GoldenCycles != b.GoldenCycles || a.GoldenInstrs != b.GoldenInstrs {
		t.Fatalf("golden runs differ: %d/%d vs %d/%d cycles/instrs",
			a.GoldenCycles, a.GoldenInstrs, b.GoldenCycles, b.GoldenInstrs)
	}
	equalComponentResults(t, a, b)
}

// TestRunParallelWorkloads checks the top-level engine: concurrent
// workloads under a shared worker budget produce the same Result as the
// sequential path, in spec order.
func TestRunParallelWorkloads(t *testing.T) {
	var specs []bench.Spec
	for _, name := range []string{"crc32", "qsort"} {
		s, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		specs = append(specs, s)
	}
	cfg := Config{FaultsPerComponent: faultsN(10), Seed: 42, Components: []fault.Component{fault.CompRegFile, fault.CompDTLB}}
	cfg.Workers = 1
	seq, err := Run(cfg, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Workloads) != len(specs) {
		t.Fatalf("workloads = %d", len(par.Workloads))
	}
	for i, spec := range specs {
		if par.Workloads[i].Workload != spec.Name {
			t.Fatalf("workload %d is %q, want %q (order must follow specs)",
				i, par.Workloads[i].Workload, spec.Name)
		}
		equalComponentResults(t, &seq.Workloads[i], &par.Workloads[i])
	}
}

// TestPageTableLineStrikeIsNeverBenign pins down the paper's System-Crash
// mechanism deterministically: with warm (live-board) caches, the page
// table sits in the L1D. Flipping a physical-page-number bit of the PTE
// that maps the application's first code page guarantees a wrong
// translation on the first user fetch — the fault cannot be masked.
func TestPageTableLineStrikeIsNeverBenign(t *testing.T) {
	spec, _ := bench.ByName("susan_s")
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := harness.New(soc.PresetZynq(), soc.ModelAtomic, built)
	if err != nil {
		t.Fatal(err)
	}
	// The PTE for the app entry page lives at PageTableBase + vpn*4.
	pteAddr := soc.PageTableBase + (soc.UserTextBase>>12)*4

	// Locate the L1D bit index holding that PTE in the warm state.
	wb.Machine.RestoreSnapshot(wb.Snap, true)
	l1d := wb.Machine.Mem.L1D
	lineBytes := uint64(l1d.Config().LineBytes)
	target := uint64(0)
	found := false
	for bit := uint64(0); bit < l1d.SizeBits(); bit += lineBytes * 8 {
		addr, valid, _ := l1d.LineInfo(bit)
		if valid && addr == pteAddr&^uint32(lineBytes-1) {
			off := uint64(pteAddr) % lineBytes // byte offset of the PTE in its line
			target = bit + off*8 + 14          // a PPN bit (bit 14 of the PTE word)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("page-table line not resident in warm L1D — boot path changed?")
	}
	cls, ctx := wb.RunFaultDetail(fault.Fault{Comp: fault.CompL1D, Bit: target, Cycle: 0}, true)
	if !ctx.LineValid || !ctx.KernelOwned() {
		t.Fatalf("context = %+v, want live kernel-owned line", ctx)
	}
	if cls == fault.ClassMasked {
		t.Fatalf("PPN flip in the app's code-page PTE was masked")
	}
}

func TestContextCountsConsistent(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultsPerComponent = faultsN(20)
	res := runSmall(t, cfg, "crc32")
	for _, c := range res.Components {
		for _, cls := range fault.Classes() {
			if c.KernelStruck[cls] > c.ValidStruck[cls] {
				t.Errorf("%v/%v: kernel-struck %d exceeds valid-struck %d",
					c.Comp, cls, c.KernelStruck[cls], c.ValidStruck[cls])
			}
			if c.ValidStruck[cls] > c.Counts[cls] {
				t.Errorf("%v/%v: valid-struck %d exceeds outcomes %d",
					c.Comp, cls, c.ValidStruck[cls], c.Counts[cls])
			}
		}
	}
}
