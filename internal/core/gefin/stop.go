// Deterministic sequential early stopping: a campaign-wide commit
// controller serializes per-slot outcomes back into plan order, feeds the
// streaming convergence estimators, and — when a target margin is set —
// truncates each component's plan at the first check boundary where every
// class estimator meets the margin under the alpha-spending rule.
//
// The truncation point is a pure function of the plan-order outcome
// prefix: outcomes commit out of order (workers race on the execution
// permutation) but are buffered until the contiguous plan-order prefix
// reaches them, and the sequential rule is evaluated only on complete
// prefixes at fixed boundaries. Every worker count therefore derives the
// identical cut, and the truncated aggregation is byte-identical to the
// same plan-order prefix of a full run. Outcomes raced past the cut are
// discarded by the truncated aggregation.

package gefin

import (
	"sync"
	"sync/atomic"

	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
	"armsefi/internal/stats"
)

// DefaultStopCheckEvery is the default plan-order check-boundary spacing
// (injections per component between sequential looks).
const DefaultStopCheckEvery = 50

// StopComponent reports one workload x component's sequential-stopping
// outcome.
type StopComponent struct {
	Workload string          `json:"workload"`
	Comp     fault.Component `json:"comp"`
	// Planned and Executed count the component's plan slots before and
	// after truncation; Looks the sequential evaluations taken.
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	Looks    int `json:"looks"`
	// Margin is the achieved margin at the campaign's plain confidence:
	// the widest Wilson half-width across the component's class
	// estimators (the binding one for the stop decision).
	Margin float64 `json:"margin"`
	// Stopped reports whether the sequential rule truncated the
	// component before its full plan.
	Stopped bool `json:"stopped"`
}

// StopSummary reports what the sequential stopping rule did to a
// campaign. Like PruneSummary it lives beside Workloads, never inside
// them: a stopped Result's Workloads are byte-identical to the same
// plan-order prefix of a full run, and the summary is the part that
// differs.
type StopSummary struct {
	TargetMargin float64 `json:"target_margin"`
	Confidence   float64 `json:"confidence"`
	// Planned, Executed, and Saved count plan slots across the summary's
	// scope: drawn, kept after truncation, and cut away.
	Planned  int `json:"planned"`
	Executed int `json:"executed"`
	Saved    int `json:"saved"`
	// Shadow marks a run that executed the full plan (Config.StopShadow)
	// while computing the same cuts — the cross-check mode CI diffs
	// against a genuinely stopped run.
	Shadow     bool            `json:"shadow,omitempty"`
	Components []StopComponent `json:"components,omitempty"`
}

// merge folds another summary into s (components append in call order).
func (s *StopSummary) merge(o *StopSummary) {
	if o == nil {
		return
	}
	s.TargetMargin = o.TargetMargin
	s.Confidence = o.Confidence
	s.Shadow = o.Shadow
	s.Planned += o.Planned
	s.Executed += o.Executed
	s.Saved += o.Saved
	s.Components = append(s.Components, o.Components...)
}

// stopController is one workload's commit controller. A nil controller
// is inert: campaigns without a target margin or an observer never pay
// for it.
type stopController struct {
	rule     stats.SeqRule
	every    int
	perComp  int
	shadow   bool
	workload string
	comps    []fault.Component
	ob       *obs.Observer
	conv     *obs.ConvRegistry
	tc       obs.TraceContext

	// cut is each component's committed truncation point (-1 until the
	// rule fires). Written once under mu; read lock-free by skip() on
	// the worker hot path.
	cut []atomic.Int32

	mu      sync.Mutex
	done    []bool        // per plan slot: outcome committed
	classes []fault.Class // committed class per slot
	next    []int         // per comp: contiguous plan-order prefix length
	look    []int         // per comp: sequential looks taken
	counts  [][]int       // per comp: class tallies over the committed prefix
}

// newStopController builds the controller for one workload, or nil when
// neither early stopping nor convergence observability is wanted. An
// exhaustive sweep never gets one: its plan is not uniform per component
// (the controller's slot-to-component indexing assumes FaultsPerComponent
// slots each), and measuring the population leaves nothing to estimate.
func newStopController(cfg Config, workload string, planLen int, tc obs.TraceContext) *stopController {
	rule := stats.SeqRule{TargetMargin: cfg.TargetMargin, Confidence: cfg.Confidence}
	if cfg.Exhaustive || (!rule.Enabled() && !cfg.Obs.On()) {
		return nil
	}
	every := cfg.StopCheckEvery
	if every <= 0 {
		every = DefaultStopCheckEvery
	}
	sc := &stopController{
		rule:     rule,
		every:    every,
		perComp:  cfg.FaultsPerComponent,
		shadow:   cfg.StopShadow,
		workload: workload,
		comps:    cfg.Components,
		ob:       cfg.Obs,
		conv:     obs.NewConvRegistry(rule),
		tc:       tc,
		cut:      make([]atomic.Int32, len(cfg.Components)),
		done:     make([]bool, planLen),
		classes:  make([]fault.Class, planLen),
		next:     make([]int, len(cfg.Components)),
		look:     make([]int, len(cfg.Components)),
		counts:   make([][]int, len(cfg.Components)),
	}
	for ci := range sc.cut {
		sc.cut[ci].Store(-1)
		sc.counts[ci] = make([]int, fault.NumClasses)
	}
	return sc
}

// skip reports whether plan slot i falls at or past its component's
// committed truncation point — workers consult it before executing.
// Shadow mode never skips: the whole plan executes while the cuts are
// still computed, so the truncated aggregation can be cross-checked
// against a genuinely stopped run.
func (sc *stopController) skip(i int) bool {
	if sc == nil || sc.shadow || !sc.rule.Enabled() {
		return false
	}
	c := sc.cut[i/sc.perComp].Load()
	return c >= 0 && i%sc.perComp >= int(c)
}

// commit records slot i's verdict (predicted and simulated verdicts both
// count), advances the component's contiguous plan-order prefix, and
// evaluates the sequential rule at every check boundary the prefix
// crosses. Safe for concurrent use; idempotent per slot.
func (sc *stopController) commit(i int, cls fault.Class) {
	if sc == nil {
		return
	}
	var emit []obs.ConvSnapshot
	sc.mu.Lock()
	if !sc.done[i] {
		sc.done[i] = true
		sc.classes[i] = cls
		ci := i / sc.perComp
		if sc.cut[ci].Load() < 0 {
			base := ci * sc.perComp
			for sc.next[ci] < sc.perComp && sc.done[base+sc.next[ci]] {
				c := sc.classes[base+sc.next[ci]]
				sc.counts[ci][int(c)-1]++
				sc.next[ci]++
				if sc.next[ci]%sc.every == 0 || sc.next[ci] == sc.perComp {
					emit = append(emit, sc.lookLocked(ci)...)
					if sc.cut[ci].Load() >= 0 {
						// The rule fired: freeze the prefix at the cut so
						// the estimators report exactly the truncated
						// aggregation, in shadow mode too.
						break
					}
				}
			}
		}
	}
	sc.mu.Unlock()
	if len(emit) > 0 {
		sc.ob.Convergence(emit, sc.tc)
	}
}

// lookLocked takes one sequential look at component ci's prefix
// estimators: evaluates the stopping rule across every class, commits
// the cut when all meet the target margin, and refreshes the
// convergence registry. Returns the component's snapshots for emission
// outside the lock.
func (sc *stopController) lookLocked(ci int) []obs.ConvSnapshot {
	sc.look[ci]++
	n := sc.next[ci]
	allMet := sc.rule.Enabled()
	for _, k := range sc.counts[ci] {
		if !sc.rule.Met(k, n, sc.look[ci]) {
			allMet = false
			break
		}
	}
	if allMet {
		sc.cut[ci].Store(int32(n))
	}
	stopped := sc.cut[ci].Load() >= 0
	snaps := make([]obs.ConvSnapshot, 0, fault.NumClasses)
	for _, cls := range fault.Classes() {
		key := obs.ConvKey{Workload: sc.workload, Comp: sc.comps[ci], Class: cls}
		snaps = append(snaps, sc.conv.Update(key, sc.counts[ci][int(cls)-1], n, sc.perComp, sc.look[ci], stopped))
	}
	return snaps
}

// cuts returns the per-component truncation points the aggregation
// consumes (full plan for components the rule never stopped), or nil
// when the rule is disabled — the aggregation is then byte-identical to
// a controller-free run.
func (sc *stopController) cuts() []int {
	if sc == nil || !sc.rule.Enabled() {
		return nil
	}
	out := make([]int, len(sc.comps))
	for ci := range out {
		if c := sc.cut[ci].Load(); c >= 0 {
			out[ci] = int(c)
		} else {
			out[ci] = sc.perComp
		}
	}
	return out
}

// finish emits every estimator's final snapshot and builds the
// workload's stop summary (nil when the rule is disabled).
func (sc *stopController) finish() *StopSummary {
	if sc == nil {
		return nil
	}
	sc.ob.Convergence(sc.conv.Snapshots(), sc.tc)
	if !sc.rule.Enabled() {
		return nil
	}
	conf := sc.rule.Confidence
	if conf == 0 {
		conf = 0.99
	}
	s := &StopSummary{
		TargetMargin: sc.rule.TargetMargin,
		Confidence:   conf,
		Shadow:       sc.shadow,
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for ci, comp := range sc.comps {
		executed := sc.perComp
		stopped := false
		if c := sc.cut[ci].Load(); c >= 0 && int(c) < sc.perComp {
			executed, stopped = int(c), true
		}
		margin := 0.0
		for _, k := range sc.counts[ci] {
			if m := sc.rule.Margin(k, executed); m > margin {
				margin = m
			}
		}
		s.Components = append(s.Components, StopComponent{
			Workload: sc.workload,
			Comp:     comp,
			Planned:  sc.perComp,
			Executed: executed,
			Looks:    sc.look[ci],
			Margin:   margin,
			Stopped:  stopped,
		})
		s.Planned += sc.perComp
		s.Executed += executed
	}
	s.Saved = s.Planned - s.Executed
	return s
}
