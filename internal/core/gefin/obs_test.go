package gefin

import (
	"bytes"
	"fmt"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/obs"
)

// runTraced executes a traced campaign and returns both the engine Result
// and the recomputed view of its JSONL trace.
func runTraced(t *testing.T, cfg Config, workload string) (*WorkloadResult, *obs.Summary) {
	t.Helper()
	spec, ok := bench.ByName(workload)
	if !ok {
		t.Fatalf("workload %s missing", workload)
	}
	var buf bytes.Buffer
	cfg.Obs = obs.New(obs.Options{TraceWriter: &buf})
	res, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return res, sum
}

// TestTraceMatchesResult is the trace<->Result consistency contract: the
// per-class counts recomputed from the JSONL trace equal the engine's own
// aggregation exactly, whether the campaign ran sequentially or sharded
// across four workers.
func TestTraceMatchesResult(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Workers = workers
			res, sum := runTraced(t, cfg, "crc32")

			if got := sum.Kind(obs.KindInjection).Records; got != len(res.Components)*cfg.FaultsPerComponent {
				t.Fatalf("trace has %d injection records, campaign ran %d",
					got, len(res.Components)*cfg.FaultsPerComponent)
			}
			for _, cr := range res.Components {
				c := sum.Component(obs.KindInjection, "crc32", cr.Comp)
				if c.Records != cr.N {
					t.Errorf("%v: %d trace records, result N %d", cr.Comp, c.Records, cr.N)
				}
				for _, cls := range fault.Classes() {
					if c.Counts[cls] != cr.Counts[cls] {
						t.Errorf("%v/%v: trace %d, result %d",
							cr.Comp, cls, c.Counts[cls], cr.Counts[cls])
					}
				}
			}
		})
	}
}

// TestTraceStrikeContext checks the per-record Valid/Kernel context against
// the result's ValidStruck/KernelStruck tallies — the trace must carry the
// full injection lifecycle, not just the final class.
func TestTraceStrikeContext(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	var buf bytes.Buffer
	cfg.Obs = obs.New(obs.Options{TraceWriter: &buf})
	spec, _ := bench.ByName("qsort")
	res, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[fault.Component]map[fault.Class]int)
	kernel := make(map[fault.Component]map[fault.Class]int)
	for _, rec := range recs {
		if rec.Kind != obs.KindInjection {
			continue // convergence records stream alongside injections
		}
		if rec.ExecCycles == 0 {
			t.Fatalf("record without execution cycles: %+v", rec)
		}
		if rec.Outcome == "" {
			t.Fatalf("record without raw outcome: %+v", rec)
		}
		if rec.Valid {
			if valid[rec.Comp] == nil {
				valid[rec.Comp] = make(map[fault.Class]int)
			}
			valid[rec.Comp][rec.Class]++
		}
		if rec.Kernel {
			if kernel[rec.Comp] == nil {
				kernel[rec.Comp] = make(map[fault.Class]int)
			}
			kernel[rec.Comp][rec.Class]++
		}
	}
	for _, cr := range res.Components {
		for _, cls := range fault.Classes() {
			if valid[cr.Comp][cls] != cr.ValidStruck[cls] {
				t.Errorf("%v/%v: trace valid %d, result %d",
					cr.Comp, cls, valid[cr.Comp][cls], cr.ValidStruck[cls])
			}
			if kernel[cr.Comp][cls] != cr.KernelStruck[cls] {
				t.Errorf("%v/%v: trace kernel %d, result %d",
					cr.Comp, cls, kernel[cr.Comp][cls], cr.KernelStruck[cls])
			}
		}
	}
}

// TestTracingPreservesResults asserts the observability layer is purely
// additive: an instrumented campaign produces the bit-identical Result of
// an uninstrumented one.
func TestTracingPreservesResults(t *testing.T) {
	plain := runSmall(t, smallConfig(), "crc32")
	traced, _ := runTraced(t, smallConfig(), "crc32")
	equalComponentResults(t, plain, traced)
}

// TestRunTracedMultiWorkload exercises the top-level engine: concurrent
// workloads interleave their records in one trace, and the per-workload
// recomputation still matches each workload's Result.
func TestRunTracedMultiWorkload(t *testing.T) {
	var specs []bench.Spec
	for _, name := range []string{"crc32", "qsort"} {
		s, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		specs = append(specs, s)
	}
	var buf bytes.Buffer
	cfg := Config{
		FaultsPerComponent: faultsN(10),
		Seed:               42,
		Workers:            4,
		Components:         []fault.Component{fault.CompRegFile, fault.CompDTLB},
		Obs:                obs.New(obs.Options{TraceWriter: &buf}),
	}
	res, err := Run(cfg, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workloads {
		for _, cr := range w.Components {
			c := sum.Component(obs.KindInjection, w.Workload, cr.Comp)
			if c.Records != cr.N {
				t.Errorf("%s/%v: %d trace records, result N %d", w.Workload, cr.Comp, c.Records, cr.N)
			}
			for _, cls := range fault.Classes() {
				if c.Counts[cls] != cr.Counts[cls] {
					t.Errorf("%s/%v/%v: trace %d, result %d",
						w.Workload, cr.Comp, cls, c.Counts[cls], cr.Counts[cls])
				}
			}
		}
	}
}
