// Equivalence-class deduplication glue: partition the pre-drawn plan's
// dedupable injections into outcome-equivalence classes (same fault
// site, same inter-event quiescent window — see internal/core/equiv),
// simulate the canonical representative of each class, and materialize
// its outcome onto every member. Materialized outcomes are by
// construction exactly what simulating the member would have produced,
// so the aggregated Workloads stay byte-identical with deduplication on
// or off — the class bookkeeping surfaces only in DedupSummary and in
// trace records tagged dedup=true.

package gefin

import (
	"fmt"
	"time"

	"armsefi/internal/core/equiv"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/obs"
)

// dedupPlan holds one workload's equivalence-class partition.
type dedupPlan struct {
	classes []equiv.Class
	// classOf maps each plan slot to its class index (-1 for slots
	// outside any multi-member class); member marks the non-representative
	// members — the slots a deduplicated execution order excludes.
	classOf []int
	member  []bool
	summary DedupSummary
}

// buildDedup partitions the plan against the workbench's liveness log,
// excluding slots the pre-filter already decided (pp non-nil): a decided
// slot resolves to its predicted verdict without simulation, so classing
// it could only shadow a representative that must still run. Both the
// partition and the decided set are pure functions of the deterministic
// liveness replay and the pre-drawn plan, so every node of a distributed
// campaign derives identical classes for its shard ranges.
func buildDedup(cfg Config, wb *harness.Workbench, workload string, plan []plannedFault, pp *prunePlan) *dedupPlan {
	faults := make([]fault.Fault, len(plan))
	for i, p := range plan {
		faults[i] = p.f
	}
	var eligible func(int) bool
	if pp != nil {
		eligible = func(i int) bool { return !pp.decided[i] }
	}
	dd := &dedupPlan{
		classOf: make([]int, len(plan)),
		member:  make([]bool, len(plan)),
	}
	dd.classes = equiv.Partition(wb.Liveness, faults, eligible)
	for i := range dd.classOf {
		dd.classOf[i] = -1
	}
	for ci, cl := range dd.classes {
		for _, m := range cl.Members {
			dd.classOf[m] = ci
			if m != cl.Rep {
				dd.member[m] = true
			}
		}
	}
	st := equiv.StatsOf(dd.classes)
	dd.summary = DedupSummary{Classes: st.Classes, Deduped: st.Deduped, MaxClass: st.MaxClass}
	if cfg.Obs.On() {
		sizes := make([]int, len(dd.classes))
		for ci, cl := range dd.classes {
			sizes[ci] = len(cl.Members)
		}
		cfg.Obs.DedupClasses(workload, sizes)
	}
	return dd
}

// emit traces one materialized member injection: the member's own fault
// coordinates carrying the representative's outcome skeleton, tagged
// dedup=true, and feeds the dedup counter grid.
func (dd *dedupPlan) emit(cfg Config, workload string, p plannedFault, rep outcome, worker int, tc obs.TraceContext) {
	cfg.Obs.Deduped(workload, p.f.Comp)
	if !cfg.Obs.On() {
		return
	}
	now := time.Now()
	rec := obs.Record{
		Kind:       obs.KindInjection,
		Workload:   workload,
		Comp:       p.f.Comp,
		Bit:        p.f.Bit,
		Cycle:      p.f.Cycle,
		Worker:     worker,
		ExecCycles: rep.cycles,
		Outcome:    rep.outstr,
		Class:      rep.class,
		Valid:      rep.valid,
		Kernel:     rep.kernel,
		Dedup:      true,
	}
	if rep.mech != 0 {
		rec.Mechanism = rep.mech.String()
	}
	tc.Stamp(&rec)
	cfg.Obs.Record(rec, now, now)
}

// dedupMismatch compares a shadow-mode member's simulated outcome
// against its representative's and describes the disagreement ("" on
// match). Both outcomes come from provenance runs, so the mechanism
// verdicts compare too.
func dedupMismatch(member, rep plannedFault, want, got outcome) string {
	if got.class == want.class && got.mech == want.mech && got.valid == want.valid && got.kernel == want.kernel {
		return ""
	}
	return fmt.Sprintf("%v bit=%d cycle=%d (rep cycle=%d): representative %v/%v valid=%v kernel=%v, member %v/%v valid=%v kernel=%v",
		member.f.Comp, member.f.Bit, member.f.Cycle, rep.f.Cycle,
		want.class, want.mech, want.valid, want.kernel,
		got.class, got.mech, got.valid, got.kernel)
}
