package gefin

import (
	"encoding/json"
	"reflect"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
)

// TestShardAssemblyMatchesRun pins the campaign service's determinism
// foundation: executing the plan as shards (in a scrambled order, as a
// resumed or multi-node campaign would) and reassembling must reproduce
// the in-process WorkloadResult bit-for-bit — including after a JSON
// round-trip, the wire format shard results actually cross.
func TestShardAssemblyMatchesRun(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	cfg := Config{
		FaultsPerComponent: faultsN(9),
		Seed:               123,
		Components:         []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB},
	}
	direct, err := RunWorkload(cfg, spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	planLen := PlanLen(cfg)
	if planLen != 3*cfg.FaultsPerComponent {
		t.Fatalf("PlanLen = %d", planLen)
	}
	// Uneven shard cuts, executed out of order — the claim pattern of a
	// multi-node campaign with one node dying mid-run.
	cuts := [][2]int{{planLen - 4, planLen}, {0, 5}, {5, planLen - 4}}
	r := NewShardRunner(cfg)
	outs := make([]ShardOutcome, planLen)
	var meta ShardMeta
	for _, c := range cuts {
		part, m, err := r.RunShard(spec, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		// JSON round-trip: shard results cross process boundaries.
		wire, err := json.Marshal(part)
		if err != nil {
			t.Fatal(err)
		}
		var back []ShardOutcome
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatal(err)
		}
		copy(outs[c[0]:c[1]], back)
		if meta.GoldenCycles == 0 {
			meta = m
		} else if !reflect.DeepEqual(meta, m) {
			t.Fatalf("shard meta diverged: %+v vs %+v", meta, m)
		}
	}
	assembled, err := AssembleWorkload(cfg, spec.Name, meta, outs)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := json.Marshal(direct)
	aj, _ := json.Marshal(assembled)
	if string(dj) != string(aj) {
		t.Fatalf("assembled result diverges from direct run:\n direct    %s\n assembled %s", dj, aj)
	}
}

// TestShardRunnerBounds pins range validation and workbench reuse.
func TestShardRunnerBounds(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := Config{FaultsPerComponent: 2, Seed: 9, Components: []fault.Component{fault.CompRegFile}}
	r := NewShardRunner(cfg)
	if _, _, err := r.RunShard(spec, -1, 1); err == nil {
		t.Error("negative lo accepted")
	}
	if _, _, err := r.RunShard(spec, 0, PlanLen(cfg)+1); err == nil {
		t.Error("hi past plan end accepted")
	}
	if _, _, err := r.RunShard(spec, 1, 1); err == nil {
		t.Error("empty shard accepted")
	}
	if _, _, err := r.RunShard(spec, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(r.benches) != 1 {
		t.Fatalf("benches = %d", len(r.benches))
	}
	r.Release(spec.Name)
	if len(r.benches) != 0 {
		t.Fatalf("benches = %d after Release", len(r.benches))
	}
}

// TestAssembleValidation pins the assembler's coverage checks.
func TestAssembleValidation(t *testing.T) {
	cfg := Config{FaultsPerComponent: 2, Seed: 1, Components: []fault.Component{fault.CompRegFile}}
	meta := ShardMeta{GoldenCycles: 10, SizeBits: []uint64{1024}}
	if _, err := AssembleWorkload(cfg, "x", meta, make([]ShardOutcome, 1)); err == nil {
		t.Error("short outcome set accepted")
	}
	meta.SizeBits = nil
	if _, err := AssembleWorkload(cfg, "x", meta, make([]ShardOutcome, 2)); err == nil {
		t.Error("missing sizes accepted")
	}
}
