package gefin

import (
	"reflect"
	"strings"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
)

// TestExhaustivePlanInvariants pins the sweep plan's population-exact
// accounting on the real crc32 liveness replay: per enumerated DTLB
// site, the planned windows tile the golden cycle range exactly (weights
// sum to Sites x GoldenCycles), every slot targets a modelable
// physical-region bit, and rebuilding the plan derives the identical
// enumeration. The ITLB arm must refuse: instruction fetch overflows its
// hot entry's event recording, and a truncated stream cannot claim
// population exactness.
func TestExhaustivePlanInvariants(t *testing.T) {
	cfg := Config{Exhaustive: true, Components: []fault.Component{fault.CompDTLB}}.withDefaults()
	spec, _ := bench.ByName("crc32")
	wb, err := prepareWorkbench(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	ep, sizes, err := exhaustivePlanFor(cfg, wb)
	if err != nil {
		t.Fatal(err)
	}
	if ep.sites[0] == 0 || ep.perComp[0] == 0 {
		t.Fatalf("empty enumeration: %d sites, %d windows", ep.sites[0], ep.perComp[0])
	}
	if len(ep.plan) != ep.perComp[0] || len(ep.weights) != len(ep.plan) {
		t.Fatalf("plan %d, weights %d, perComp %d disagree", len(ep.plan), len(ep.weights), ep.perComp[0])
	}
	if sizes[0] != fault.SizeBits(wb.Machine, fault.CompDTLB) {
		t.Fatalf("component size %d", sizes[0])
	}
	var sum uint64
	perSite := make(map[uint64]uint64)
	for i, p := range ep.plan {
		if p.comp != 0 || p.f.Comp != fault.CompDTLB {
			t.Fatalf("slot %d targets %v", i, p.f.Comp)
		}
		if b := p.f.Bit % mem.TLBEntryBits; b < mem.TLBPhysRegionStart || b >= mem.TLBPhysRegionStart+mem.TLBModelBits {
			t.Fatalf("slot %d strikes unmodelable entry bit %d", i, b)
		}
		if p.f.Cycle >= wb.Golden.Cycles {
			t.Fatalf("slot %d beyond the golden run: cycle %d", i, p.f.Cycle)
		}
		sum += ep.weights[i]
		perSite[p.f.Bit] += ep.weights[i]
	}
	if want := ep.sites[0] * wb.Golden.Cycles; sum != want {
		t.Fatalf("weights sum to %d, want Sites x GoldenCycles = %d", sum, want)
	}
	if uint64(len(perSite)) != ep.sites[0] {
		t.Fatalf("%d distinct sites in plan, %d counted", len(perSite), ep.sites[0])
	}
	for bit, w := range perSite {
		if w != wb.Golden.Cycles {
			t.Fatalf("site %d windows sum to %d, want %d", bit, w, wb.Golden.Cycles)
		}
	}

	again, _, err := exhaustivePlanFor(cfg, wb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep, again) {
		t.Fatal("re-derived plan differs: the sweep is not a pure function of the liveness log")
	}

	icfg := cfg
	icfg.Components = []fault.Component{fault.CompITLB}
	if _, _, err := exhaustivePlanFor(icfg, wb); err == nil || !strings.Contains(err.Error(), "overflowed") {
		t.Fatalf("overflowed ITLB enumeration did not refuse: %v", err)
	}
}

// TestExhaustiveAggregate checks the weighted aggregation on a synthetic
// plan: unweighted counts describe the simulated windows, weighted
// counts sum to the population exactly, and the sweep summary carries
// the enumeration statistics.
func TestExhaustiveAggregate(t *testing.T) {
	cfg := Config{Exhaustive: true, Components: []fault.Component{fault.CompDTLB}}.withDefaults()
	const goldenCycles = 100
	ep := &exhaustivePlan{
		plan: []plannedFault{
			{comp: 0, f: fault.Fault{Comp: fault.CompDTLB, Bit: 20, Cycle: 0}},
			{comp: 0, f: fault.Fault{Comp: fault.CompDTLB, Bit: 20, Cycle: 30}},
			{comp: 0, f: fault.Fault{Comp: fault.CompDTLB, Bit: 63, Cycle: 0}},
		},
		weights: []uint64{30, 70, 100},
		perComp: []int{3},
		sites:   []uint64{2},
	}
	outcomes := []outcome{
		{class: fault.ClassMasked},
		{class: fault.ClassSDC, valid: true},
		{class: fault.ClassMasked, kernel: true},
	}
	res, sweep := aggregateExhaustive(cfg, "crc32", goldenCycles, 42, []uint64{1376}, ep, outcomes)
	c := res.Components[0]
	if c.N != 3 || c.Sites != 2 || c.Population != 200 {
		t.Fatalf("component header %+v", c)
	}
	if c.Counts[fault.ClassMasked] != 2 || c.Counts[fault.ClassSDC] != 1 {
		t.Fatalf("unweighted counts %v", c.Counts)
	}
	if c.WeightedCounts[fault.ClassMasked] != 130 || c.WeightedCounts[fault.ClassSDC] != 70 {
		t.Fatalf("weighted counts %v", c.WeightedCounts)
	}
	var wsum uint64
	for _, w := range c.WeightedCounts {
		wsum += w
	}
	if wsum != c.Population {
		t.Fatalf("weighted counts sum to %d, want population %d", wsum, c.Population)
	}
	if avf := c.AVF(); avf != 70.0/200 {
		t.Fatalf("population AVF %f, want 0.35", avf)
	}
	if c.ValidStruck[fault.ClassSDC] != 1 || c.KernelStruck[fault.ClassMasked] != 1 {
		t.Fatalf("struck maps %v %v", c.ValidStruck, c.KernelStruck)
	}
	s := sweep.Components[0]
	if s.Sites != 2 || s.Windows != 3 || s.Population != 200 || s.MaxWidth != 100 {
		t.Fatalf("sweep summary %+v", s)
	}
	if s.MeanWidth != 200.0/3 {
		t.Fatalf("mean width %f", s.MeanWidth)
	}
	if s.AVF != c.AVF() {
		t.Fatalf("sweep AVF %f vs component %f", s.AVF, c.AVF())
	}
}

// TestExhaustiveValidate pins the sweep mode's configuration surface:
// sampling-only features and non-recorded components are refused up
// front rather than producing a silently wrong population.
func TestExhaustiveValidate(t *testing.T) {
	base := Config{Exhaustive: true, Components: []fault.Component{fault.CompDTLB}}
	if err := base.withDefaults().validate(); err != nil {
		t.Fatalf("plain exhaustive config refused: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Config)
	}{
		{"target margin", func(c *Config) { c.TargetMargin = 0.01 }},
		{"stop shadow", func(c *Config) { c.StopShadow = true }},
		{"full tlb entries", func(c *Config) { c.TLBFullEntry = true }},
		{"register file", func(c *Config) { c.Components = []fault.Component{fault.CompRegFile} }},
	}
	for _, tc := range bad {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("%s: exhaustive config accepted", tc.name)
		}
	}
}
