package gefin

import (
	"bytes"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
	"armsefi/internal/obs"
)

// TestProvenanceResultInvariance is the determinism contract of the
// provenance probe: the campaign Result is bit-identical with the probe
// attached or absent, at any worker count, with or without the
// checkpoint ladder. The probe path runs even without an observer, so
// this exercises the taint hooks themselves, not just the tracing.
func TestProvenanceResultInvariance(t *testing.T) {
	base := Config{
		FaultsPerComponent: faultsN(24),
		Seed:               2025,
		CheckpointEvery:    10_000,
		Components:         []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB},
	}
	ref := base
	ref.Workers = 1
	a := runSmall(t, ref, "crc32")
	variants := []struct {
		name    string
		workers int
		every   uint64
		prov    bool
	}{
		{"prov workers=1", 1, 10_000, true},
		{"prov workers=4", 4, 10_000, true},
		{"plain workers=4", 4, 10_000, false},
		{"prov no ladder", 1, 0, true},
	}
	for _, v := range variants {
		cfg := base
		cfg.Workers = v.workers
		cfg.CheckpointEvery = v.every
		cfg.Provenance = v.prov
		b := runSmall(t, cfg, "crc32")
		if a.GoldenCycles != b.GoldenCycles || a.GoldenInstrs != b.GoldenInstrs {
			t.Fatalf("%s: golden runs differ: %d/%d vs %d/%d cycles/instrs",
				v.name, a.GoldenCycles, a.GoldenInstrs, b.GoldenCycles, b.GoldenInstrs)
		}
		equalComponentResults(t, a, b)
	}
}

// TestProvenancePartition is the verdict-partition contract over every
// primary component: in a traced provenance campaign each record carries
// a mechanism verdict consistent with its class, and the mechanism
// tallies reproduce the engine's per-class counts exactly — masked
// mechanisms sum to Masked, propagated-sdc equals SDC, and the
// trap/timeout routes together equal the two crash counts. Running at
// four workers under the CI race job doubles as the probe's race test.
func TestProvenancePartition(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Provenance = true
	res, sum := runTraced(t, cfg, "crc32")
	for _, cr := range res.Components {
		c := sum.Component(obs.KindInjection, "crc32", cr.Comp)
		if c.MechRecords != cr.N {
			t.Errorf("%v: %d of %d records carry a mechanism verdict", cr.Comp, c.MechRecords, cr.N)
		}
		if c.MechMismatch != 0 {
			t.Errorf("%v: %d verdicts contradict their outcome class", cr.Comp, c.MechMismatch)
		}
		masked := 0
		for _, m := range fault.Mechanisms() {
			if m.Masking() {
				masked += c.Mechanisms[m]
			}
		}
		if masked != cr.Counts[fault.ClassMasked] {
			t.Errorf("%v: masked mechanisms sum to %d, Masked count is %d",
				cr.Comp, masked, cr.Counts[fault.ClassMasked])
		}
		if got := c.Mechanisms[fault.MechPropagatedSDC]; got != cr.Counts[fault.ClassSDC] {
			t.Errorf("%v: propagated-sdc %d, SDC count %d", cr.Comp, got, cr.Counts[fault.ClassSDC])
		}
		crash := c.Mechanisms[fault.MechPropagatedTrap] + c.Mechanisms[fault.MechPropagatedTimeout]
		if want := cr.Counts[fault.ClassAppCrash] + cr.Counts[fault.ClassSysCrash]; crash != want {
			t.Errorf("%v: crash mechanisms sum to %d, crash classes count %d", cr.Comp, crash, want)
		}
	}
}

// TestProvenanceRecordFields drills into individual trace records: every
// verdict parses, is consistent with its record's class, and a
// read-logically-masked verdict with an intact event chain carries the
// consuming read that justifies it.
func TestProvenanceRecordFields(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	cfg.Provenance = true
	var buf bytes.Buffer
	cfg.Obs = obs.New(obs.Options{TraceWriter: &buf})
	spec, _ := bench.ByName("qsort")
	if _, err := RunWorkload(cfg, spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Obs.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, rec := range recs {
		if rec.Kind != obs.KindInjection {
			continue // convergence records stream alongside injections
		}
		m, ok := fault.MechanismByName(rec.Mechanism)
		if !ok {
			t.Fatalf("record carries unknown mechanism %q", rec.Mechanism)
		}
		if !m.Matches(rec.Class) {
			t.Errorf("%v/%v: verdict %v contradicts class", rec.Comp, rec.Class, m)
		}
		if m == fault.MechReadMasked && rec.ProvDropped == 0 {
			found := false
			for _, ev := range rec.ProvEvents {
				if ev.Kind == mem.ProbeRead {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: read-logically-masked verdict without a read event: %+v",
					rec.Comp, rec.ProvEvents)
			}
			reads++
		}
	}
	if reads == 0 {
		t.Log("no read-logically-masked verdicts in this sample (event-chain check not exercised)")
	}
}
