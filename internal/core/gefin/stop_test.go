package gefin

import (
	"encoding/json"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
)

// stopConfig is a campaign small enough to run in tests but large enough
// that a loose target margin genuinely truncates some components: with
// check boundaries every 10 injections, skewed class fractions meet a
// 0.30 half-width well before the 45-injection plan runs out.
func stopConfig() Config {
	return Config{
		FaultsPerComponent: 45,
		Seed:               77,
		Components:         []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB},
		TargetMargin:       0.30,
		StopCheckEvery:     10,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStopWorkerInvariance pins the centrepiece contract of sequential
// early stopping: the truncation point is a pure function of the
// plan-order outcome prefix, so a stopped campaign — Workloads AND the
// stop summary — is byte-identical at any worker count.
func TestStopWorkerInvariance(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("workload crc32 missing")
	}
	seq := stopConfig()
	seq.Workers = 1
	par := stopConfig()
	par.Workers = 4
	a, err := Run(seq, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(par, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aw, bw := mustJSON(t, a.Workloads), mustJSON(t, b.Workloads); string(aw) != string(bw) {
		t.Errorf("stopped Workloads differ across worker counts:\n%s\nvs\n%s", aw, bw)
	}
	if as, bs := mustJSON(t, a.Stop), mustJSON(t, b.Stop); string(as) != string(bs) {
		t.Errorf("stop summaries differ across worker counts:\n%s\nvs\n%s", as, bs)
	}
}

// TestStopMatchesShadowPrefix cross-checks the prefix property without
// trusting the stop path: a shadow run executes the full plan, computes
// the same cuts, and emits the truncated aggregation — byte-identical
// Workloads to the genuinely stopped run.
func TestStopMatchesShadowPrefix(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("workload crc32 missing")
	}
	stopped := stopConfig()
	shadow := stopConfig()
	shadow.StopShadow = true
	shadow.Workers = 3
	a, err := Run(stopped, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shadow, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aw, bw := mustJSON(t, a.Workloads), mustJSON(t, b.Workloads); string(aw) != string(bw) {
		t.Errorf("stopped Workloads differ from shadow run's truncated aggregation:\n%s\nvs\n%s", aw, bw)
	}
	if !b.Stop.Shadow {
		t.Error("shadow summary must be marked")
	}
	// Both runs derive the identical cuts.
	ac, bc := a.Stop.Components, b.Stop.Components
	if len(ac) != len(bc) || len(ac) == 0 {
		t.Fatalf("component summaries: %d vs %d", len(ac), len(bc))
	}
	for i := range ac {
		// Every field — cut, looks, margin — is a deterministic function of
		// the identical plan-order prefix, so exact equality holds.
		if ac[i] != bc[i] {
			t.Errorf("cuts differ: %+v vs %+v", ac[i], bc[i])
		}
	}
}

// TestStopSummaryShape checks the summary's arithmetic and that the loose
// margin genuinely saved injections — the point of the feature.
func TestStopSummaryShape(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("workload crc32 missing")
	}
	res, err := Run(stopConfig(), []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stop
	if s == nil {
		t.Fatal("stop summary missing")
	}
	if s.TargetMargin != 0.30 || s.Confidence != 0.99 {
		t.Errorf("rule echo = %v @ %v", s.TargetMargin, s.Confidence)
	}
	if s.Planned-s.Executed != s.Saved {
		t.Errorf("saved arithmetic: %d - %d != %d", s.Planned, s.Executed, s.Saved)
	}
	if s.Saved <= 0 {
		t.Errorf("loose margin saved no injections (executed %d of %d)", s.Executed, s.Planned)
	}
	exec := 0
	for _, c := range s.Components {
		exec += c.Executed
		if c.Planned != 45 {
			t.Errorf("%v: planned %d", c.Comp, c.Planned)
		}
		if c.Executed <= 0 || c.Executed > c.Planned {
			t.Errorf("%v: executed %d out of range", c.Comp, c.Executed)
		}
		if c.Stopped != (c.Executed < c.Planned) {
			t.Errorf("%v: stopped flag inconsistent: %+v", c.Comp, c)
		}
		if c.Stopped && c.Margin > 0.30 {
			t.Errorf("%v: stopped with achieved margin %v above target", c.Comp, c.Margin)
		}
		if c.Executed%10 != 0 && c.Executed != c.Planned {
			t.Errorf("%v: cut %d not at a check boundary", c.Comp, c.Executed)
		}
	}
	if exec != s.Executed {
		t.Errorf("component executed sum %d != total %d", exec, s.Executed)
	}
	// The aggregation reflects the truncation: each component's N is its
	// executed count and the class counts sum to it.
	wl := res.Workloads[0]
	for i, c := range wl.Components {
		if c.N != s.Components[i].Executed {
			t.Errorf("%v: result N %d != executed %d", c.Comp, c.N, s.Components[i].Executed)
		}
		total := 0
		for _, n := range c.Counts {
			total += n
		}
		if total != c.N {
			t.Errorf("%v: counts sum %d != N %d", c.Comp, total, c.N)
		}
	}
}

// TestStopDisabledIsInert re-checks the baseline contract: without a
// target margin the controller contributes nothing — the result matches
// a plain campaign byte for byte and carries no summary.
func TestStopDisabledIsInert(t *testing.T) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		t.Fatal("workload crc32 missing")
	}
	plain := stopConfig()
	plain.TargetMargin = 0
	plain.StopCheckEvery = 0
	res, err := Run(plain, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stop != nil {
		t.Errorf("disabled rule produced a summary: %+v", res.Stop)
	}
	base, err := Run(Config{FaultsPerComponent: 45, Seed: 77,
		Components: []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB}}, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if aw, bw := mustJSON(t, res.Workloads), mustJSON(t, base.Workloads); string(aw) != string(bw) {
		t.Errorf("disabled stop rule perturbed the campaign:\n%s\nvs\n%s", aw, bw)
	}
}
