package gefin

import (
	"testing"

	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// TestLadderAndWorkerInvariance is the checkpoint ladder's campaign-level
// contract: the aggregated Result is bit-identical with the ladder on or
// off, at one worker or many — the ladder (and its cycle-sorted execution
// order) is purely an execution optimisation.
func TestLadderAndWorkerInvariance(t *testing.T) {
	base := Config{
		FaultsPerComponent: faultsN(24),
		Seed:               2025,
		Components:         []fault.Component{fault.CompRegFile, fault.CompL1D, fault.CompDTLB},
	}
	var ref *WorkloadResult
	for _, workers := range []int{1, 4} {
		for _, every := range []uint64{0, 10_000} {
			cfg := base
			cfg.Workers = workers
			cfg.CheckpointEvery = every
			res := runSmall(t, cfg, "crc32")
			if ref == nil {
				ref = res
				continue
			}
			if res.GoldenCycles != ref.GoldenCycles || res.GoldenInstrs != ref.GoldenInstrs {
				t.Fatalf("workers=%d every=%d: golden %d/%d differs from reference %d/%d",
					workers, every, res.GoldenCycles, res.GoldenInstrs, ref.GoldenCycles, ref.GoldenInstrs)
			}
			equalComponentResults(t, ref, res)
		}
	}
}

// TestLadderWarmCampaignInvariance repeats the contract for the warm-cache
// ablation, whose ladder is captured under warm restores.
func TestLadderWarmCampaignInvariance(t *testing.T) {
	cfg := Config{
		FaultsPerComponent: faultsN(15),
		Seed:               9,
		Components:         []fault.Component{fault.CompRegFile, fault.CompL1D},
		WarmCaches:         true,
	}
	off := runSmall(t, cfg, "qsort")
	cfg.CheckpointEvery = soc.DefaultCheckpointEvery
	on := runSmall(t, cfg, "qsort")
	equalComponentResults(t, off, on)
}
