// Campaign pre-filter glue: classify the pre-drawn plan against the
// workload's liveness log, resolve decided slots without simulation, and
// cross-check predictions against simulated verdicts in shadow mode.
// Predictions carry the exact verdict simulation would conclude, so the
// aggregated Workloads stay byte-identical with pruning on or off — the
// predicted/simulated split surfaces only in PruneSummary and in trace
// records tagged predicted=true.

package gefin

import (
	"fmt"
	"time"

	"armsefi/internal/core/ace"
	"armsefi/internal/core/harness"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
)

// prunePlan holds the per-slot pre-filter verdicts of one workload.
type prunePlan struct {
	preds   []ace.Prediction
	decided []bool
	summary PruneSummary
}

// predictPlan classifies every planned injection against the workbench's
// liveness log. Prediction is a pure function of (log, fault), so every
// node of a distributed campaign derives identical verdicts.
func predictPlan(wb *harness.Workbench, plan []plannedFault) *prunePlan {
	pp := &prunePlan{
		preds:   make([]ace.Prediction, len(plan)),
		decided: make([]bool, len(plan)),
		summary: PruneSummary{ByMechanism: make(map[string]int)},
	}
	for i, p := range plan {
		pred, ok := ace.Predict(wb.Liveness, p.f)
		if !ok {
			continue
		}
		pp.preds[i], pp.decided[i] = pred, true
		pp.summary.Predicted++
		pp.summary.ByMechanism[pred.Mech.String()]++
	}
	return pp
}

// outcome converts slot i's prediction into the outcome record the
// aggregation consumes — identical to what simulating the fault would
// have produced.
func (pp *prunePlan) outcome(i int) outcome {
	pred := pp.preds[i]
	return outcome{class: pred.Class, valid: pred.Valid, kernel: pred.Kernel, mech: pred.Mech}
}

// emit traces slot i's predicted injection (tagged predicted=true, with
// the golden run's raw outcome fields) and feeds the predicted counter
// grid.
func (pp *prunePlan) emit(cfg Config, wb *harness.Workbench, workload string, i int, p plannedFault, worker int, tc obs.TraceContext) {
	pred := pp.preds[i]
	cfg.Obs.Predicted(workload, p.f.Comp, pred.Mech)
	if !cfg.Obs.On() {
		return
	}
	now := time.Now()
	rec := obs.Record{
		Kind:       obs.KindInjection,
		Workload:   workload,
		Comp:       p.f.Comp,
		Bit:        p.f.Bit,
		Cycle:      p.f.Cycle,
		Worker:     worker,
		ExecCycles: wb.Liveness.Final.Cycles,
		Outcome:    wb.Liveness.Final.Outcome.String(),
		Class:      pred.Class,
		Valid:      pred.Valid,
		Kernel:     pred.Kernel,
		Mechanism:  pred.Mech.String(),
		Predicted:  true,
	}
	tc.Stamp(&rec)
	cfg.Obs.Record(rec, now, now)
}

// pruneMismatch compares a shadow-mode prediction against the simulated
// verdict of the same slot and describes the disagreement ("" on match).
// The simulated outcome comes from a provenance run, so o.mech is the
// probe's mechanism verdict.
func pruneMismatch(p plannedFault, pred ace.Prediction, o outcome) string {
	if o.class == pred.Class && o.mech == pred.Mech && o.valid == pred.Valid && o.kernel == pred.Kernel {
		return ""
	}
	return fmt.Sprintf("%v bit=%d cycle=%d: predicted %v/%v valid=%v kernel=%v, simulated %v/%v valid=%v kernel=%v",
		p.f.Comp, p.f.Bit, p.f.Cycle,
		pred.Class, pred.Mech, pred.Valid, pred.Kernel,
		o.class, o.mech, o.valid, o.kernel)
}

// batchSpan is one contiguous range of the execution order whose
// injections restore the same ladder rung.
type batchSpan struct{ lo, hi int }

// maxRungBatch caps a batch so the atomic-cursor load balancing still
// has grains to balance when one rung covers most of the plan.
const maxRungBatch = 64

// batchByRung cuts the cycle-sorted execution order into rung-sharing
// batches: a worker claims a whole batch, so consecutive runs restore
// the identical rung image and the copy-on-write DRAM restore touches
// only the pages the previous run dirtied. A nil ladder degenerates to
// one-slot batches (plain atomic-cursor draining). Purely an execution
// grouping: outcomes still land in plan slots, so Results are unchanged.
func batchByRung(l *soc.Ladder, plan []plannedFault, order []int) []batchSpan {
	batches := make([]batchSpan, 0, len(order)/maxRungBatch+1)
	if l == nil {
		for i := range order {
			batches = append(batches, batchSpan{i, i + 1})
		}
		return batches
	}
	for lo := 0; lo < len(order); {
		rung := l.RungCycleFor(plan[order[lo]].f.Cycle)
		hi := lo + 1
		for hi < len(order) && hi-lo < maxRungBatch && l.RungCycleFor(plan[order[hi]].f.Cycle) == rung {
			hi++
		}
		batches = append(batches, batchSpan{lo, hi})
		lo = hi
	}
	return batches
}
