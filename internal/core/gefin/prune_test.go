package gefin

import (
	"encoding/json"
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// pruneConfig exercises every component the pre-filter can decide (the
// caches and the DTLB) plus the register file, which is always undecided.
func pruneConfig(seed int64) Config {
	return Config{
		FaultsPerComponent: faultsN(24),
		Seed:               seed,
		Components: []fault.Component{
			fault.CompRegFile, fault.CompL1D, fault.CompL2, fault.CompDTLB,
		},
	}
}

// TestPruneResultInvariance is the pre-filter's campaign-level contract:
// the aggregated WorkloadResult is byte-identical with pruning on or off,
// at one worker or many, with or without the checkpoint ladder — the
// pre-filter, the rung batching, and the shared checkpoint images are
// purely execution optimisations.
func TestPruneResultInvariance(t *testing.T) {
	for _, workload := range []string{"crc32", "matmul"} {
		cfg := pruneConfig(2026)
		cfg.Workers = 1
		ref := runSmall(t, cfg, workload)
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			for _, every := range []uint64{0, soc.DefaultCheckpointEvery} {
				pcfg := cfg
				pcfg.Workers = workers
				pcfg.CheckpointEvery = every
				pcfg.Prune = true
				res := runSmall(t, pcfg, workload)
				got, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(refJSON) {
					equalComponentResults(t, ref, res) // pinpoint the diff
					t.Fatalf("%s workers=%d every=%d: pruned result not byte-identical to unpruned", workload, workers, every)
				}
			}
		}
	}
}

// TestPruneSummarySplit checks the predicted/simulated bookkeeping: the
// split covers the whole plan, something is actually predicted for
// cache-heavy plans, and the split never leaks into Workloads.
func TestPruneSummarySplit(t *testing.T) {
	spec, _ := bench.ByName("crc32")
	cfg := pruneConfig(2026).withDefaults()
	cfg.Prune = true
	cfg.CheckpointEvery = soc.DefaultCheckpointEvery
	res, err := Run(cfg, []bench.Spec{spec}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prune == nil {
		t.Fatal("pruned Run returned no PruneSummary")
	}
	s := res.Prune
	if want := PlanLen(cfg); s.Predicted+s.Simulated != want {
		t.Fatalf("split %d predicted + %d simulated != plan %d", s.Predicted, s.Simulated, want)
	}
	if s.Predicted == 0 {
		t.Fatal("pre-filter decided nothing on a cache-heavy plan")
	}
	if s.Verified != 0 || s.Mismatches != 0 {
		t.Fatalf("non-shadow run reports verification: %+v", s)
	}
	byMech := 0
	for _, n := range s.ByMechanism {
		byMech += n
	}
	if byMech != s.Predicted {
		t.Fatalf("ByMechanism sums to %d, want %d", byMech, s.Predicted)
	}
	if f := s.PredictedFraction(); f <= 0 || f >= 1 {
		t.Fatalf("predicted fraction %f out of (0,1)", f)
	}
}

// TestPruneVerifyShadowMode is the cross-validation harness: shadow mode
// predicts every plan slot AND simulates it with the provenance probe
// armed, then fails the campaign on any disagreement. Zero mismatches at
// one worker and four, on both workloads, validates the liveness
// pre-filter against ground truth.
func TestPruneVerifyShadowMode(t *testing.T) {
	for _, workload := range []string{"crc32", "matmul"} {
		for _, workers := range []int{1, 4} {
			cfg := pruneConfig(2027)
			cfg.Workers = workers
			cfg.CheckpointEvery = soc.DefaultCheckpointEvery
			cfg.PruneVerify = true
			spec, _ := bench.ByName(workload)
			res, err := Run(cfg, []bench.Spec{spec}, nil)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", workload, workers, err)
			}
			s := res.Prune
			if s == nil || s.Predicted == 0 {
				t.Fatalf("%s workers=%d: shadow mode predicted nothing", workload, workers)
			}
			if s.Verified != s.Predicted || s.Mismatches != 0 {
				t.Fatalf("%s workers=%d: verified %d/%d with %d mismatches",
					workload, workers, s.Verified, s.Predicted, s.Mismatches)
			}
			if want := PlanLen(cfg.withDefaults()); s.Simulated != want {
				t.Fatalf("%s workers=%d: shadow mode simulated %d of %d", workload, workers, s.Simulated, want)
			}
		}
	}
}

// TestPruneShardInvariance extends the contract to the campaign-service
// path: shards executed by a pruned runner assemble into the same
// WorkloadResult as an unpruned in-process run, and the wire outcomes
// carry the predicted/simulated split for the coordinator.
func TestPruneShardInvariance(t *testing.T) {
	cfg := pruneConfig(2028)
	cfg.CheckpointEvery = soc.DefaultCheckpointEvery
	spec, _ := bench.ByName("crc32")
	ref := runSmall(t, cfg, "crc32")

	pcfg := cfg
	pcfg.Prune = true
	r := NewShardRunner(pcfg)
	n := PlanLen(pcfg)
	var outs []ShardOutcome
	var meta ShardMeta
	for lo := 0; lo < n; lo += 7 {
		hi := lo + 7
		if hi > n {
			hi = n
		}
		part, m, err := r.RunShard(spec, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, part...)
		meta = m
	}
	res, err := AssembleWorkload(pcfg, "crc32", meta, outs)
	if err != nil {
		t.Fatal(err)
	}
	equalComponentResults(t, ref, res)

	s := ShardPruneSummary(outs)
	if s.Predicted == 0 || s.Predicted+s.Simulated != n {
		t.Fatalf("shard split %d/%d over plan %d", s.Predicted, s.Simulated, n)
	}
	if total := MergePruneSummaries([]*PruneSummary{s, nil}); total.Predicted != s.Predicted {
		t.Fatalf("merge dropped predictions: %d vs %d", total.Predicted, s.Predicted)
	}

	// Shadow mode on the shard path: every slot simulates and the runner
	// fails the shard on any disagreement.
	vcfg := cfg
	vcfg.PruneVerify = true
	vr := NewShardRunner(vcfg)
	if _, _, err := vr.RunShard(spec, 0, n); err != nil {
		t.Fatalf("shard shadow mode: %v", err)
	}
}
