// Campaign execution engine: fault sampling is split from fault execution
// so that the sample depends only on the seeded RNG while execution can be
// sharded across a pool of workbenches. The determinism contract — the
// same Seed yields the same Result at any Workers value — follows from
// pre-drawing the whole per-component fault list in the sequential
// engine's exact RNG order, recording every outcome into its plan slot,
// and aggregating the slots in plan order.

package gefin

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/core/sched"
	"armsefi/internal/mem"
	"armsefi/internal/obs"
)

// plannedFault is one pre-drawn injection of the campaign plan.
type plannedFault struct {
	comp int // index into cfg.Components
	f    fault.Fault
}

// outcome is the record of one executed injection. mech is the
// provenance mechanism verdict when one was computed (provenance or
// shadow-verify runs with an armed probe); aggregation ignores it.
// cycles and outstr carry the raw run observables so a deduplicated
// member's trace record can reproduce its representative's skeleton.
type outcome struct {
	class  fault.Class
	valid  bool
	kernel bool
	mech   fault.Mechanism
	cycles uint64
	outstr string
}

// sideSummaries carries one workload's optional side reports — the parts
// of a Result that live beside Workloads rather than inside them.
type sideSummaries struct {
	prune *PruneSummary
	dedup *DedupSummary
	sweep *SweepSummary
	stop  *StopSummary
}

// sampleFaults pre-draws the full campaign plan for one workload,
// consuming the RNG in exactly the order the sequential engine did:
// components outer, injections inner, with the TLB region re-draw nested
// between the bit and cycle draws.
func sampleFaults(cfg Config, sizes []uint64, goldenCycles uint64, rng *rand.Rand) []plannedFault {
	plan := make([]plannedFault, 0, len(cfg.Components)*cfg.FaultsPerComponent)
	for ci, comp := range cfg.Components {
		size := sizes[ci]
		for i := 0; i < cfg.FaultsPerComponent; i++ {
			bit := uint64(rng.Int63n(int64(size)))
			if !cfg.TLBFullEntry && (comp == fault.CompITLB || comp == fault.CompDTLB) {
				// GeFIN targets the physical page and permission bits of
				// the TLB entries (Section V-B).
				entry := bit / mem.TLBEntryBits
				bit = entry*mem.TLBEntryBits +
					mem.TLBPhysRegionStart + uint64(rng.Intn(mem.TLBPhysRegionBits))
			}
			plan = append(plan, plannedFault{comp: ci, f: fault.Fault{
				Comp:  comp,
				Bit:   bit,
				Cycle: uint64(rng.Int63n(int64(goldenCycles))),
			}})
		}
	}
	return plan
}

// prepareWorkbench builds the workload's workbench (and its checkpoint
// ladder and pre-filter liveness log when configured) — the setup shared
// by the in-process engine and the campaign-service shard runner.
func prepareWorkbench(cfg Config, spec bench.Spec) (*harness.Workbench, error) {
	wb, err := harness.Build(cfg.Preset, cfg.Model, spec, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("gefin: %w", err)
	}
	if cfg.CheckpointEvery > 0 {
		// One instrumented golden replay per workload; clones share the
		// resulting ladder, so the capture cost is paid once.
		if err := wb.BuildLadder(cfg.CheckpointEvery, cfg.MaxCheckpoints, cfg.WarmCaches); err != nil {
			return nil, fmt.Errorf("gefin: %w", err)
		}
		cfg.Obs.LadderMemory(spec.Name, wb.Ladder.MemoryBytes(), wb.Ladder.SharedBytes())
	}
	if cfg.Prune || cfg.Dedup || cfg.Exhaustive {
		// A second instrumented replay records the liveness log the
		// pre-filter, the equivalence-class partitioner, and the exhaustive
		// enumerator all classify against; clones share it too.
		if err := wb.BuildLiveness(cfg.WarmCaches); err != nil {
			return nil, fmt.Errorf("gefin: %w", err)
		}
	}
	return wb, nil
}

// planFor pre-draws the workload's full fault plan from the campaign
// seed. The plan is a pure function of (cfg, workload name, component
// sizes, golden cycle count), so every node of a distributed campaign
// derives the identical plan independently.
func planFor(cfg Config, wb *harness.Workbench, name string) ([]plannedFault, []uint64) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hashString(name))))
	sizes := make([]uint64, len(cfg.Components))
	for ci, comp := range cfg.Components {
		sizes[ci] = fault.SizeBits(wb.Machine, comp)
	}
	return sampleFaults(cfg, sizes, wb.Golden.Cycles, rng), sizes
}

// execPlanned executes one pre-drawn injection on the workbench,
// emitting trace records and metrics when an observer is attached. It is
// the single per-injection execution path: the in-process drain loop and
// the shard runner both go through it, so a shard executed on a remote
// node takes exactly the code path of a local run. tc stamps distributed
// trace context (campaign/shard/node/span) onto emitted records; the
// zero context stamps nothing.
func execPlanned(cfg Config, wb *harness.Workbench, workload string, probe *mem.Probe, p plannedFault, worker int, tc obs.TraceContext) outcome {
	var o outcome
	switch {
	case cfg.Provenance:
		// The probe runs even without an observer, so the determinism
		// contract (Results byte-identical with provenance on or off) is
		// exercised by the probe itself, not by tracing.
		start := time.Now()
		class, ctx, raw, ls := wb.RunFaultProv(p.f, cfg.WarmCaches, probe)
		stop := time.Now()
		o = outcome{class: class, valid: ctx.LineValid, kernel: ctx.KernelOwned(), cycles: raw.Cycles, outstr: raw.Outcome.String()}
		if probe.Armed() {
			o.mech = fault.MechanismOf(class, raw, probe)
		}
		if cfg.Obs.On() {
			cfg.Obs.LadderRun(ls)
			rec := obs.Record{
				Kind:       obs.KindInjection,
				Workload:   workload,
				Comp:       p.f.Comp,
				Bit:        p.f.Bit,
				Cycle:      p.f.Cycle,
				Worker:     worker,
				ExecCycles: raw.Cycles,
				Outcome:    raw.Outcome.String(),
				Class:      class,
				Valid:      ctx.LineValid,
				Kernel:     ctx.KernelOwned(),
				FFCycles:   ls.FastForwarded,
				EarlyExit:  ls.EarlyExit,
			}
			if probe.Armed() {
				cfg.Obs.Mechanism(workload, p.f.Comp, o.mech)
				rec.Mechanism = o.mech.String()
				if ev, ok := probe.FirstRead(); ok {
					rec.ReadCycle, rec.ReadPC, rec.ReadReg = ev.Cycle, ev.PC, ev.Reg
				}
				rec.ProvEvents = append([]mem.ProbeEvent(nil), probe.Events()...)
				rec.ProvDropped = probe.Dropped()
				rec.DivergedAt, rec.ConvergedAt = ls.DivergedAt, ls.ConvergedAt
			}
			tc.Stamp(&rec)
			cfg.Obs.Record(rec, start, stop)
		}
	case cfg.Obs.On():
		start := time.Now()
		class, ctx, raw, ls := wb.RunFaultLadder(p.f, cfg.WarmCaches)
		stop := time.Now()
		o = outcome{class: class, valid: ctx.LineValid, kernel: ctx.KernelOwned(), cycles: raw.Cycles, outstr: raw.Outcome.String()}
		cfg.Obs.LadderRun(ls)
		rec := obs.Record{
			Kind:       obs.KindInjection,
			Workload:   workload,
			Comp:       p.f.Comp,
			Bit:        p.f.Bit,
			Cycle:      p.f.Cycle,
			Worker:     worker,
			ExecCycles: raw.Cycles,
			Outcome:    raw.Outcome.String(),
			Class:      class,
			Valid:      ctx.LineValid,
			Kernel:     ctx.KernelOwned(),
			FFCycles:   ls.FastForwarded,
			EarlyExit:  ls.EarlyExit,
		}
		tc.Stamp(&rec)
		cfg.Obs.Record(rec, start, stop)
	default:
		class, ctx, raw, _ := wb.RunFaultLadder(p.f, cfg.WarmCaches)
		o = outcome{class: class, valid: ctx.LineValid, kernel: ctx.KernelOwned(), cycles: raw.Cycles, outstr: raw.Outcome.String()}
	}
	return o
}

// aggregate folds per-plan-slot outcomes into the workload result, always
// in plan order (components outer, injections inner), so the aggregation
// is identical whether the outcomes were produced by one process or
// assembled from shards executed on many nodes. cuts (nil for the full
// plan) truncates each component to its sequential-stopping prefix:
// slots at or past a component's cut are discarded — including outcomes
// workers raced past the cut before it committed — so the truncated
// aggregation is a pure function of the plan-order prefix.
func aggregate(cfg Config, workload string, goldenCycles, goldenInstrs uint64, sizes []uint64, outcomes []outcome, cuts []int) *WorkloadResult {
	out := &WorkloadResult{
		Workload:     workload,
		Scale:        cfg.Scale,
		GoldenCycles: goldenCycles,
		GoldenInstrs: goldenInstrs,
	}
	for ci, comp := range cfg.Components {
		n := cfg.FaultsPerComponent
		if cuts != nil {
			n = cuts[ci]
		}
		out.Components = append(out.Components, ComponentResult{
			Comp:         comp,
			SizeBits:     sizes[ci],
			N:            n,
			Counts:       make(map[fault.Class]int, fault.NumClasses),
			ValidStruck:  make(map[fault.Class]int, fault.NumClasses),
			KernelStruck: make(map[fault.Class]int, fault.NumClasses),
		})
	}
	for i, o := range outcomes {
		ci := i / cfg.FaultsPerComponent
		if cuts != nil && i%cfg.FaultsPerComponent >= cuts[ci] {
			continue
		}
		res := &out.Components[ci]
		res.Counts[o.class]++
		if o.valid {
			res.ValidStruck[o.class]++
		}
		if o.kernel {
			res.KernelStruck[o.class]++
		}
	}
	return out
}

// runWorkload builds the workload's primary workbench, pre-draws the fault
// plan (or enumerates it, for an exhaustive sweep), and executes it across
// the primary plus as many clone workbenches as the pool grants. The side
// summaries carry whichever optional reports the configuration produced.
func runWorkload(cfg Config, spec bench.Spec, pool *sched.Pool, em *emitter) (*WorkloadResult, sideSummaries, error) {
	var side sideSummaries
	wb, err := prepareWorkbench(cfg, spec)
	if err != nil {
		return nil, side, err
	}
	var (
		plan  []plannedFault
		sizes []uint64
		ep    *exhaustivePlan
	)
	if cfg.Exhaustive {
		if ep, sizes, err = exhaustivePlanFor(cfg, wb); err != nil {
			return nil, side, err
		}
		plan = ep.plan
	} else {
		plan, sizes = planFor(cfg, wb, spec.Name)
	}
	em.addTotal(len(plan))

	// totals feeds the per-component progress denominators: uniform for a
	// sampled campaign, the enumerated window counts for a sweep.
	totals := make([]int, len(cfg.Components))
	for ci := range totals {
		totals[ci] = cfg.FaultsPerComponent
		if ep != nil {
			totals[ci] = ep.perComp[ci]
		}
	}

	// The commit controller streams plan-order tallies into the
	// convergence estimators and, with a target margin set, decides each
	// component's truncation point. Nil when neither is wanted.
	sc := newStopController(cfg, spec.Name, len(plan), obs.TraceContext{})

	// Pre-filter: classify the whole plan against the liveness log before
	// any simulation. Decided slots resolve to their predicted outcome
	// below; in shadow mode they are additionally simulated and checked.
	var pp *prunePlan
	if cfg.Prune {
		pp = predictPlan(wb, plan)
	}

	// Equivalence-class partition over the pre-filter's undecided
	// remainder: member slots resolve from their representative's outcome.
	// An exhaustive plan already enumerates one injection per class, so
	// there is nothing left to collapse.
	var dd *dedupPlan
	if cfg.Dedup && !cfg.Exhaustive {
		dd = buildDedup(cfg, wb, spec.Name, plan, pp)
	}

	// Execution order: the slots that go to the simulator. With the ladder
	// on, workers drain it sorted by injection cycle (ties broken by plan
	// index), so consecutive runs on a worker restore the same or a
	// neighbouring rung and the short early-injection runs cluster instead
	// of straggling. The order is a pure execution permutation: every
	// outcome still lands in its plan slot and aggregation stays in plan
	// order, so the Result is bit-identical at any worker count, pruned or
	// not, deduplicated or not, sorted or not.
	order := make([]int, 0, len(plan))
	for i := range plan {
		if pp != nil && !cfg.PruneVerify && pp.decided[i] {
			continue
		}
		if dd != nil && !cfg.DedupVerify && dd.member[i] {
			continue
		}
		order = append(order, i)
	}
	if cfg.CheckpointEvery > 0 {
		sort.SliceStable(order, func(a, b int) bool {
			return plan[order[a]].f.Cycle < plan[order[b]].f.Cycle
		})
	}
	batches := batchByRung(wb.Ladder, plan, order)

	// Claim extra workers up-front (a clone is one kernel boot each) so a
	// boot failure surfaces before any injection runs.
	extras := cfg.Workers - 1
	if extras > len(order)-1 {
		extras = len(order) - 1
	}
	var clones []*harness.Workbench
	for len(clones) < extras {
		ok := pool.TryAcquire()
		cfg.Obs.CloneTry(ok)
		if !ok {
			break
		}
		clone, err := wb.Clone()
		if err != nil {
			pool.Release()
			for range clones {
				pool.Release()
			}
			return nil, side, fmt.Errorf("gefin: %w", err)
		}
		clones = append(clones, clone)
	}

	outcomes := make([]outcome, len(plan))

	// Resolve predicted slots without simulation (outside shadow mode):
	// fill their outcomes, trace them as predicted, and tick progress.
	if pp != nil && !cfg.PruneVerify {
		for i := range plan {
			if !pp.decided[i] || sc.skip(i) {
				continue
			}
			outcomes[i] = pp.outcome(i)
			sc.commit(i, outcomes[i].class)
			pp.emit(cfg, wb, spec.Name, i, plan[i], 0, obs.TraceContext{})
			em.tick(spec.Name, cfg.Components[plan[i].comp], totals[plan[i].comp])
		}
	}

	// Shadow modes simulate everything with a provenance probe so every
	// prediction (or materialized member) can be checked against the
	// probe's mechanism verdict.
	execCfg := cfg
	if cfg.PruneVerify || cfg.DedupVerify {
		execCfg.Provenance = true
	}
	var mismatchMu sync.Mutex
	var mismatches []string

	// Dynamic sharding: workers race on an atomic cursor over rung-sharing
	// batches of the execution order (one-slot batches without a ladder),
	// so load balances regardless of per-injection cost while consecutive
	// runs on a worker restore the identical rung image — the
	// copy-on-write DRAM restore then touches only the pages the previous
	// run dirtied. Every outcome lands in its plan slot and aggregation
	// order stays fixed.
	var cursor int64
	drain := func(worker int, w *harness.Workbench) {
		em.workerStarted()
		defer em.workerDone()
		// Each worker owns its probe: arrays it taints are its own
		// workbench's, so probes never cross goroutines.
		var probe *mem.Probe
		if execCfg.Provenance {
			probe = new(mem.Probe)
		}
		for {
			n := atomic.AddInt64(&cursor, 1) - 1
			if n >= int64(len(batches)) {
				return
			}
			b := batches[n]
			for k := b.lo; k < b.hi; k++ {
				i := order[k]
				if sc.skip(i) {
					continue
				}
				p := plan[i]
				o := execPlanned(execCfg, w, spec.Name, probe, p, worker, obs.TraceContext{})
				outcomes[i] = o
				sc.commit(i, o.class)
				if pp != nil && cfg.PruneVerify && pp.decided[i] {
					if msg := pruneMismatch(p, pp.preds[i], o); msg != "" {
						mismatchMu.Lock()
						pp.summary.Mismatches++
						if len(mismatches) < 8 {
							mismatches = append(mismatches, msg)
						}
						mismatchMu.Unlock()
					}
				}
				em.tick(spec.Name, cfg.Components[p.comp], totals[p.comp])
				// A class representative materializes its outcome onto every
				// member right here on its own worker: member slots are
				// excluded from the execution order, so no other goroutine
				// touches them, and the materialized outcome is by
				// construction what simulating the member would produce.
				if dd != nil && !cfg.DedupVerify {
					if ci := dd.classOf[i]; ci >= 0 && dd.classes[ci].Rep == i {
						for _, m := range dd.classes[ci].Members {
							if m == i || sc.skip(m) {
								continue
							}
							outcomes[m] = o
							sc.commit(m, o.class)
							dd.emit(cfg, spec.Name, plan[m], o, worker, obs.TraceContext{})
							em.tick(spec.Name, cfg.Components[plan[m].comp], totals[plan[m].comp])
						}
					}
				}
			}
		}
	}
	var wg sync.WaitGroup
	for ci, clone := range clones {
		wg.Add(1)
		go func(worker int, clone *harness.Workbench) {
			defer wg.Done()
			defer pool.Release()
			harness.Phased("shard-execution", func() { drain(worker, clone) })
		}(ci+1, clone)
	}
	// The caller's own slot drives the primary.
	harness.Phased("shard-execution", func() { drain(0, wb) })
	wg.Wait()

	side.stop = sc.finish()
	cuts := sc.cuts()

	// Early stopping truncates the execution order; report the
	// deterministic truncated count (slots within the cuts), not however
	// many slots workers raced past the cut before it committed.
	simulated := len(order)
	if cuts != nil && !cfg.StopShadow {
		sim := 0
		for _, i := range order {
			if i%cfg.FaultsPerComponent < cuts[i/cfg.FaultsPerComponent] {
				sim++
			}
		}
		simulated = sim
	}
	beyondCut := func(i int) bool {
		return cuts != nil && i%cfg.FaultsPerComponent >= cuts[i/cfg.FaultsPerComponent]
	}

	if pp != nil {
		pp.summary.Simulated = simulated
		if cfg.PruneVerify {
			pp.summary.Verified = pp.summary.Predicted
		}
		side.prune = &pp.summary
		if len(mismatches) > 0 {
			return nil, side, fmt.Errorf("gefin: prune-verify: %d predicted verdicts disagree with simulation on %s (first: %s)",
				pp.summary.Mismatches, spec.Name, mismatches[0])
		}
	}
	if dd != nil {
		dd.summary.Simulated = simulated
		if cfg.DedupVerify {
			// Shadow mode simulated every member above; check each against
			// its representative now that all slots are final. Slots beyond
			// a stopping cut never simulated, so they cannot be compared.
			var dedupMismatches []string
			for _, cl := range dd.classes {
				if beyondCut(cl.Rep) {
					continue
				}
				want := outcomes[cl.Rep]
				for _, m := range cl.Members {
					if m == cl.Rep || beyondCut(m) {
						continue
					}
					dd.summary.Verified++
					if msg := dedupMismatch(plan[m], plan[cl.Rep], want, outcomes[m]); msg != "" {
						dd.summary.Mismatches++
						if len(dedupMismatches) < 8 {
							dedupMismatches = append(dedupMismatches, msg)
						}
					}
				}
			}
			if len(dedupMismatches) > 0 {
				side.dedup = &dd.summary
				return nil, side, fmt.Errorf("gefin: dedup-verify: %d materialized verdicts disagree with simulation on %s (first: %s)",
					dd.summary.Mismatches, spec.Name, dedupMismatches[0])
			}
		}
		side.dedup = &dd.summary
	}
	if cfg.Exhaustive {
		res, sweep := aggregateExhaustive(cfg, spec.Name, wb.Golden.Cycles, wb.Golden.Instructions, sizes, ep, outcomes)
		side.sweep = sweep
		return res, side, nil
	}
	return aggregate(cfg, spec.Name, wb.Golden.Cycles, wb.Golden.Instructions, sizes, outcomes, cuts), side, nil
}

// emitter adapts the shared meter to gefin progress events, adding the
// per-(workload, component) completion counts, and feeds every meter
// snapshot into the observability gauges. All mutable state is only
// touched inside Meter.Tick's lock, which also serialises the user
// callback.
type emitter struct {
	meter *sched.Meter
	fn    Progress
	ob    *obs.Observer
	done  map[compKey]int
}

type compKey struct {
	workload string
	comp     fault.Component
}

// newEmitter returns nil when there is neither a callback nor an
// observer: a nil emitter's methods are no-ops, so the hot path pays
// nothing for unused progress.
func newEmitter(fn Progress, ob *obs.Observer) *emitter {
	if fn == nil && !ob.On() {
		return nil
	}
	return &emitter{meter: sched.NewMeter(), fn: fn, ob: ob, done: make(map[compKey]int)}
}

func (e *emitter) addTotal(n int) {
	if e != nil {
		e.meter.AddTotal(n)
	}
}

func (e *emitter) workerStarted() {
	if e != nil {
		e.meter.WorkerStarted()
	}
}

func (e *emitter) workerDone() {
	if e != nil {
		e.meter.WorkerDone()
	}
}

func (e *emitter) tick(workload string, comp fault.Component, totalPerComp int) {
	if e == nil {
		return
	}
	e.meter.Tick(func(s sched.Snapshot) {
		e.ob.MeterTick(s)
		if e.fn == nil {
			return
		}
		key := compKey{workload, comp}
		e.done[key]++
		e.fn(ProgressEvent{
			Workload:      workload,
			Comp:          comp,
			Done:          e.done[key],
			Total:         totalPerComp,
			CampaignDone:  s.Done,
			CampaignTotal: s.Total,
			Workers:       s.Workers,
			Rate:          s.Rate,
			ETA:           s.ETA,
		})
	})
}
