// Shard execution API of the campaign service: a campaign's pre-drawn
// fault plan is cut into contiguous index ranges ("shards"), each shard
// is executed independently — possibly on another machine — and the
// per-slot outcomes are reassembled in plan order. Because the plan is a
// pure function of the seeded Config and the workload, and every
// injection run is deterministic, the assembled WorkloadResult is
// bit-identical to an uninterrupted in-process run at any shard size,
// shard order, node count, or interruption pattern.

package gefin

import (
	"fmt"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/mem"
	"armsefi/internal/obs"
)

// ShardOutcome is the wire record of one executed injection: everything
// aggregation needs, nothing machine-local. It round-trips through JSON
// losslessly, so shard results can cross process and node boundaries.
type ShardOutcome struct {
	Class  fault.Class `json:"class"`
	Valid  bool        `json:"valid,omitempty"`
	Kernel bool        `json:"kernel,omitempty"`
	// Predicted marks a slot the pre-filter proved masked from the liveness
	// log without simulating it (pruned campaigns only); Mechanism is the
	// predicted masking mechanism. Both fields are bookkeeping for the
	// coordinator's prune split — Class/Valid/Kernel already carry exactly
	// what simulation would have concluded, so assembly ignores them.
	Predicted bool   `json:"predicted,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`
	// Dedup marks a slot materialized from a shard-local equivalence-class
	// representative without its own simulation (deduplicated campaigns
	// only). Bookkeeping for the coordinator's dedup split — the
	// materialized Class/Valid/Kernel are by construction exactly what
	// simulating the slot would have produced, so assembly ignores it.
	Dedup bool `json:"dedup,omitempty"`
}

// ShardMeta carries the per-workload constants aggregation needs. Every
// shard of a workload reports the same meta (the values derive from the
// deterministic golden run), which the assembler cross-checks.
type ShardMeta struct {
	GoldenCycles uint64   `json:"golden_cycles"`
	GoldenInstrs uint64   `json:"golden_instrs"`
	SizeBits     []uint64 `json:"size_bits"`
}

// PlanLen returns the length of the pre-drawn fault plan the Config
// implies for any one workload — components outer, injections inner. It
// needs no machine, so a coordinator can cut shard ranges at submission
// time, before any node has booted a workbench.
func PlanLen(cfg Config) int {
	cfg = cfg.withDefaults()
	return len(cfg.Components) * cfg.FaultsPerComponent
}

// PlanComponents returns the normalised component list and per-component
// sample size of the Config's plan: slot i targets component
// i/perComp in this order. Convergence tallies outside the engine (the
// campaign-service worker) use it to map plan slots back to estimators.
func PlanComponents(cfg Config) (comps []fault.Component, perComp int) {
	cfg = cfg.withDefaults()
	return cfg.Components, cfg.FaultsPerComponent
}

// ShardRunner executes plan shards for one campaign Config, caching one
// prepared workbench (boot + golden run + optional checkpoint ladder)
// per workload so consecutive shards of the same workload pay no setup.
// A runner is single-goroutine (one simulated machine per workload);
// run several runners for parallelism.
type ShardRunner struct {
	cfg Config
	// Worker tags trace records emitted during shard runs, so a node's
	// runners are distinguishable in the campaign trace.
	Worker int
	// Ctx is stamped onto every trace record the shard's injections emit
	// (campaign/shard/node/span); the campaign-service worker sets it per
	// assignment. The zero context stamps nothing.
	Ctx     obs.TraceContext
	benches map[string]*shardBench
}

type shardBench struct {
	wb    *harness.Workbench
	plan  []plannedFault
	sizes []uint64
	probe *mem.Probe
	// pp holds the pre-filter verdicts over the whole plan (pruned
	// campaigns only). Prediction is a pure function of the deterministic
	// liveness replay and the pre-drawn plan, so every node of a
	// distributed campaign derives identical verdicts for its shards.
	pp *prunePlan
	// dd holds the equivalence-class partition over the whole plan
	// (deduplicated campaigns only) — like pp, identical on every node.
	// Each RunShard call elects shard-local representatives: the first
	// member of a class inside [lo, hi) simulates, later members in the
	// same range materialize its outcome. Different shards of one class
	// each simulate their own representative — redundant across shards but
	// provably outcome-identical, so assembly stays bit-exact.
	dd *dedupPlan
}

// NewShardRunner builds a runner for the campaign Config. The Config is
// normalised exactly like Run normalises it, so shard execution sees the
// same effective knobs as an in-process campaign.
func NewShardRunner(cfg Config) *ShardRunner {
	return &ShardRunner{cfg: cfg.withDefaults(), benches: make(map[string]*shardBench)}
}

func (r *ShardRunner) bench(spec bench.Spec) (*shardBench, error) {
	if b, ok := r.benches[spec.Name]; ok {
		return b, nil
	}
	wb, err := prepareWorkbench(r.cfg, spec)
	if err != nil {
		return nil, err
	}
	plan, sizes := planFor(r.cfg, wb, spec.Name)
	b := &shardBench{wb: wb, plan: plan, sizes: sizes}
	if r.cfg.Provenance || r.cfg.PruneVerify || r.cfg.DedupVerify {
		b.probe = new(mem.Probe)
	}
	if r.cfg.Prune {
		b.pp = predictPlan(wb, plan)
	}
	if r.cfg.Dedup {
		b.dd = buildDedup(r.cfg, wb, spec.Name, plan, b.pp)
	}
	r.benches[spec.Name] = b
	return b, nil
}

// RunShard executes plan slots [lo, hi) of the workload and returns their
// outcomes in slot order plus the workload's meta. The first shard of a
// workload pays the workbench setup (kernel boot, golden run, ladder
// capture); later shards reuse it.
func (r *ShardRunner) RunShard(spec bench.Spec, lo, hi int) ([]ShardOutcome, ShardMeta, error) {
	b, err := r.bench(spec)
	if err != nil {
		return nil, ShardMeta{}, err
	}
	if lo < 0 || hi > len(b.plan) || lo >= hi {
		return nil, ShardMeta{}, fmt.Errorf("gefin: shard [%d,%d) out of plan range [0,%d)", lo, hi, len(b.plan))
	}
	execCfg := r.cfg
	if r.cfg.PruneVerify || r.cfg.DedupVerify {
		execCfg.Provenance = true
	}
	var outs []ShardOutcome
	var shardErr error
	harness.Phased("shard-execution", func() { outs, shardErr = r.runRange(spec, b, execCfg, lo, hi) })
	if shardErr != nil {
		return nil, ShardMeta{}, shardErr
	}
	return outs, r.meta(b), nil
}

// repOutcome records a shard-local class representative: the first
// simulated member of a class inside the shard's plan range.
type repOutcome struct {
	slot int
	o    outcome
}

// runRange executes plan slots [lo, hi) — the profiled shard-execution
// phase of RunShard.
func (r *ShardRunner) runRange(spec bench.Spec, b *shardBench, execCfg Config, lo, hi int) ([]ShardOutcome, error) {
	var reps map[int]repOutcome
	outs := make([]ShardOutcome, 0, hi-lo)
	for i := lo; i < hi; i++ {
		// Pre-filter: a decided slot resolves to its predicted outcome
		// without touching the simulator (in shadow mode it simulates too,
		// and a disagreement fails the shard so the coordinator surfaces it).
		if b.pp != nil && b.pp.decided[i] && !r.cfg.PruneVerify {
			pred := b.pp.preds[i]
			b.pp.emit(r.cfg, b.wb, spec.Name, i, b.plan[i], r.Worker, r.Ctx)
			outs = append(outs, ShardOutcome{
				Class: pred.Class, Valid: pred.Valid, Kernel: pred.Kernel,
				Predicted: true, Mechanism: pred.Mech.String(),
			})
			continue
		}
		// Deduplication: a later member of a class whose representative
		// already simulated in this range materializes its outcome.
		ci := -1
		if b.dd != nil {
			ci = b.dd.classOf[i]
		}
		if ci >= 0 && !r.cfg.DedupVerify {
			if rep, ok := reps[ci]; ok {
				b.dd.emit(r.cfg, spec.Name, b.plan[i], rep.o, r.Worker, r.Ctx)
				outs = append(outs, ShardOutcome{Class: rep.o.class, Valid: rep.o.valid, Kernel: rep.o.kernel, Dedup: true})
				continue
			}
		}
		o := execPlanned(execCfg, b.wb, spec.Name, b.probe, b.plan[i], r.Worker, r.Ctx)
		if b.pp != nil && r.cfg.PruneVerify && b.pp.decided[i] {
			if msg := pruneMismatch(b.plan[i], b.pp.preds[i], o); msg != "" {
				return nil, fmt.Errorf("gefin: prune-verify: prediction disagrees with simulation on %s: %s", spec.Name, msg)
			}
		}
		if ci >= 0 {
			if rep, ok := reps[ci]; ok {
				// Shadow mode (the representative path above is bypassed):
				// compare the member's simulation against its shard-local
				// representative and fail the shard on disagreement.
				if msg := dedupMismatch(b.plan[i], b.plan[rep.slot], rep.o, o); msg != "" {
					return nil, fmt.Errorf("gefin: dedup-verify: materialized verdict disagrees with simulation on %s: %s", spec.Name, msg)
				}
			} else {
				if reps == nil {
					reps = make(map[int]repOutcome)
				}
				reps[ci] = repOutcome{slot: i, o: o}
			}
		}
		outs = append(outs, ShardOutcome{Class: o.class, Valid: o.valid, Kernel: o.kernel})
	}
	return outs, nil
}

func (r *ShardRunner) meta(b *shardBench) ShardMeta {
	return ShardMeta{
		GoldenCycles: b.wb.Golden.Cycles,
		GoldenInstrs: b.wb.Golden.Instructions,
		SizeBits:     append([]uint64(nil), b.sizes...),
	}
}

// Release drops the cached workbench of a finished workload (or all of
// them for the empty string), freeing its simulated DRAM and ladder.
func (r *ShardRunner) Release(workload string) {
	if workload == "" {
		r.benches = make(map[string]*shardBench)
		return
	}
	delete(r.benches, workload)
}

// ShardPruneSummary derives a workload's predicted/simulated split from
// its assembled shard outcomes. The coordinator calls it per workload and
// merges the results into the campaign's PruneSummary — the split never
// rides inside WorkloadResult, which stays byte-identical with pruning on
// or off.
func ShardPruneSummary(outs []ShardOutcome) *PruneSummary {
	s := &PruneSummary{ByMechanism: make(map[string]int)}
	for _, o := range outs {
		if o.Predicted {
			s.Predicted++
			s.ByMechanism[o.Mechanism]++
		} else {
			s.Simulated++
		}
	}
	return s
}

// MergePruneSummaries folds per-workload splits into one campaign-level
// summary (nil when the slice is empty or all nil).
func MergePruneSummaries(parts []*PruneSummary) *PruneSummary {
	var total *PruneSummary
	for _, p := range parts {
		if p == nil {
			continue
		}
		if total == nil {
			total = &PruneSummary{ByMechanism: make(map[string]int)}
		}
		total.merge(p)
	}
	return total
}

// ShardDedupSummary derives a workload's deduplicated/simulated split
// from its assembled shard outcomes, like ShardPruneSummary. Class-count
// statistics stay zero: shards elect local representatives, so per-shard
// class tables do not reassemble into one global partition.
func ShardDedupSummary(outs []ShardOutcome) *DedupSummary {
	s := &DedupSummary{}
	for _, o := range outs {
		switch {
		case o.Dedup:
			s.Deduped++
		case !o.Predicted:
			s.Simulated++
		}
	}
	return s
}

// MergeDedupSummaries folds per-workload splits into one campaign-level
// summary (nil when the slice is empty or all nil).
func MergeDedupSummaries(parts []*DedupSummary) *DedupSummary {
	var total *DedupSummary
	for _, p := range parts {
		if p == nil {
			continue
		}
		if total == nil {
			total = &DedupSummary{}
		}
		total.merge(p)
	}
	return total
}

// AssembleWorkload reassembles a workload result from per-slot shard
// outcomes covering the full plan, in plan order. It runs the exact
// aggregation of the in-process engine, so the result is bit-identical
// to an uninterrupted run of the same Config and seed.
func AssembleWorkload(cfg Config, workload string, meta ShardMeta, outs []ShardOutcome) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	if want := len(cfg.Components) * cfg.FaultsPerComponent; len(outs) != want {
		return nil, fmt.Errorf("gefin: assemble %s: %d outcomes, want %d", workload, len(outs), want)
	}
	if len(meta.SizeBits) != len(cfg.Components) {
		return nil, fmt.Errorf("gefin: assemble %s: %d component sizes, want %d", workload, len(meta.SizeBits), len(cfg.Components))
	}
	outcomes := make([]outcome, len(outs))
	for i, o := range outs {
		outcomes[i] = outcome{class: o.Class, valid: o.Valid, kernel: o.Kernel}
	}
	return aggregate(cfg, workload, meta.GoldenCycles, meta.GoldenInstrs, meta.SizeBits, outcomes, nil), nil
}
