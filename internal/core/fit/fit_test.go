package fit

import (
	"math"
	"testing"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
)

func fakeWorkload() *gefin.WorkloadResult {
	return &gefin.WorkloadResult{
		Workload: "w",
		Components: []gefin.ComponentResult{
			{
				Comp: fault.CompL1D, SizeBits: 1000, N: 100,
				Counts: map[fault.Class]int{
					fault.ClassMasked: 80, fault.ClassSDC: 10,
					fault.ClassAppCrash: 6, fault.ClassSysCrash: 4,
				},
			},
			{
				Comp: fault.CompRegFile, SizeBits: 100, N: 100,
				Counts: map[fault.Class]int{
					fault.ClassMasked: 90, fault.ClassSDC: 10,
				},
			},
		},
	}
}

func TestFromInjectionFormula(t *testing.T) {
	inj := FromInjection(fakeWorkload(), 0.001)
	// FIT_SDC = 0.001*1000*0.10 + 0.001*100*0.10 = 0.1 + 0.01.
	if math.Abs(inj.PerClass[fault.ClassSDC]-0.11) > 1e-9 {
		t.Errorf("SDC FIT = %v", inj.PerClass[fault.ClassSDC])
	}
	if math.Abs(inj.PerClass[fault.ClassAppCrash]-0.06) > 1e-9 {
		t.Errorf("AppCrash FIT = %v", inj.PerClass[fault.ClassAppCrash])
	}
	if math.Abs(inj.PerClass[fault.ClassSysCrash]-0.04) > 1e-9 {
		t.Errorf("SysCrash FIT = %v", inj.PerClass[fault.ClassSysCrash])
	}
	if math.Abs(inj.Total()-0.21) > 1e-9 {
		t.Errorf("Total = %v", inj.Total())
	}
	if math.Abs(inj.SDCApp()-0.17) > 1e-9 {
		t.Errorf("SDCApp = %v", inj.SDCApp())
	}
	// Per-component breakdown must sum to the totals.
	var sdc float64
	for _, per := range inj.PerComponent {
		sdc += per[fault.ClassSDC]
	}
	if math.Abs(sdc-inj.PerClass[fault.ClassSDC]) > 1e-12 {
		t.Error("per-component SDC does not sum to total")
	}
}

func TestRatioConvention(t *testing.T) {
	if r := Ratio(10, 2); r != 5 {
		t.Errorf("beam-higher ratio = %v", r)
	}
	if r := Ratio(2, 10); r != -5 {
		t.Errorf("injection-higher ratio = %v", r)
	}
	if r := Ratio(3, 3); r != 1 {
		t.Errorf("equal ratio = %v", r)
	}
	// Zero floors keep ratios finite.
	if r := Ratio(0, 0); math.IsInf(r, 0) || math.IsNaN(r) {
		t.Errorf("zero/zero ratio = %v", r)
	}
	if r := Ratio(1, 0); r <= 0 || math.IsInf(r, 0) {
		t.Errorf("beam-only ratio = %v", r)
	}
}

func TestCompareAndAggregate(t *testing.T) {
	inj := FromInjection(fakeWorkload(), 0.001)
	bw := &beam.WorkloadResult{
		Workload: "w",
		Fluence:  1e9,
		Events: map[fault.Class]float64{
			// FIT = events/fluence * 13e9: 0.11 FIT SDC needs ~0.00846 events.
			fault.ClassSDC:      0.11 / 13,
			fault.ClassAppCrash: 0.6 / 13,
			fault.ClassSysCrash: 1.3 / 13,
		},
	}
	cmp := Compare(bw, inj)
	if math.Abs(cmp.Beam[fault.ClassSDC]-0.11) > 1e-9 {
		t.Fatalf("beam SDC FIT = %v", cmp.Beam[fault.ClassSDC])
	}
	if r := cmp.ClassRatio(fault.ClassSDC); math.Abs(math.Abs(r)-1) > 0.01 {
		t.Errorf("SDC ratio = %v, want ~1 in magnitude", r)
	}
	if r := cmp.ClassRatio(fault.ClassAppCrash); r < 9 || r > 11 {
		t.Errorf("AppCrash ratio = %v, want ~10", r)
	}
	if r := cmp.ClassRatio(fault.ClassSysCrash); r < 30 || r > 35 {
		t.Errorf("SysCrash ratio = %v, want ~32.5", r)
	}
	agg := AggregateComparisons([]Comparison{cmp})
	if agg.Workloads != 1 {
		t.Fatal("workload count")
	}
	if math.Abs(math.Abs(agg.RatioSDC)-1) > 0.01 {
		t.Errorf("aggregate SDC ratio = %v", agg.RatioSDC)
	}
	if agg.RatioTotal < 5 || agg.RatioTotal > 12 {
		t.Errorf("aggregate total ratio = %v, want high single digits", agg.RatioTotal)
	}
	if agg.BeamTotal <= agg.BeamSDCApp || agg.BeamSDCApp <= agg.BeamSDC {
		t.Error("beam accumulation must be monotone")
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg := AggregateComparisons(nil)
	if agg.Workloads != 0 || agg.BeamSDC != 0 {
		t.Errorf("empty aggregate = %+v", agg)
	}
}
