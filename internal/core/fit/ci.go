// Confidence intervals on the Figure 6-10 FIT comparisons, and the
// significance verdict they support: the paper argues the two
// methodologies agree, but a ratio alone cannot say whether a gap is
// statistical noise or a real disagreement. Each side gets the interval
// matching its sampling model — Wilson on the injection side (binomial
// class fractions per component) and exact Poisson on the beam side
// (discrete error events over a fixed fluence) — propagated through the
// same FIT conversions as the point estimates.

package fit

import (
	"fmt"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/stats"
)

// Interval is a two-sided confidence interval on a FIT rate.
type Interval struct {
	Lo, Hi float64
}

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Verdict classifies one beam-vs-injection comparison.
type Verdict string

const (
	// VerdictConsistent: the intervals overlap — the observed FIT gap is
	// within statistical noise at the chosen confidence.
	VerdictConsistent Verdict = "consistent"
	// VerdictBeamHigher / VerdictInjectionHigher: the intervals are
	// disjoint — a significant methodological disagreement, the beam
	// (resp. injection) estimate being the larger.
	VerdictBeamHigher      Verdict = "beam significantly higher"
	VerdictInjectionHigher Verdict = "injection significantly higher"
	// VerdictNone: no intervals were computed for the class.
	VerdictNone Verdict = ""
)

// CompareCI builds the per-workload comparison like Compare and
// additionally fills both sides' per-class FIT confidence intervals at z
// confidence (use stats.Z99/stats.Z95, or stats.ConfidenceZ).
func CompareCI(b *beam.WorkloadResult, w *gefin.WorkloadResult, fitRawPerBit, z float64) Comparison {
	inj := FromInjection(w, fitRawPerBit)
	c := Compare(b, inj)
	c.InjectionCI = injectionCI(w, fitRawPerBit, z)
	c.BeamCI = beamCI(b, z)
	return c
}

// Verdict judges one class: consistent when the two intervals overlap,
// otherwise which methodology is significantly higher.
func (c Comparison) Verdict(cls fault.Class) Verdict {
	bi, ok1 := c.BeamCI[cls]
	ii, ok2 := c.InjectionCI[cls]
	if !ok1 || !ok2 {
		return VerdictNone
	}
	if bi.Overlaps(ii) {
		return VerdictConsistent
	}
	if bi.Lo > ii.Hi {
		return VerdictBeamHigher
	}
	return VerdictInjectionHigher
}

// injectionCI propagates each component's Wilson class-fraction interval
// through the FIT conversion (FIT = FIT_raw x bits x fraction, linear in
// the fraction) and sums the endpoints across components. Summing
// endpoints is conservative — the components are independent campaigns,
// so the true sum interval is narrower — which only ever softens a
// significance verdict, never fabricates one.
func injectionCI(w *gefin.WorkloadResult, fitRawPerBit, z float64) map[fault.Class]Interval {
	out := make(map[fault.Class]Interval, fault.NumClasses)
	for _, comp := range w.Components {
		scale := fitRawPerBit * float64(comp.SizeBits)
		for _, cls := range fault.ErrorClasses() {
			lo, hi := stats.WilsonCI(comp.Counts[cls], comp.N, z)
			iv := out[cls]
			iv.Lo += scale * lo
			iv.Hi += scale * hi
			out[cls] = iv
		}
	}
	return out
}

// beamCI puts an exact Poisson interval on each class's raw simulated
// strike count and rescales it to FIT by the class's mean stratification
// weight (ModeledEvents/StrikeCounts — zero-count classes borrow the
// campaign-wide mean weight so their upper bound stays informative). The
// platform-overlay contribution (Events minus ModeledEvents) is an
// analytic expectation with no Monte-Carlo variance, so it shifts both
// endpoints as a constant.
func beamCI(b *beam.WorkloadResult, z float64) map[fault.Class]Interval {
	if b.Fluence == 0 {
		return nil
	}
	toFIT := beam.FluxNYC * beam.FITHours / b.Fluence

	var sumW float64
	var sumK int
	for _, cls := range fault.Classes() {
		sumW += b.ModeledEvents[cls]
		sumK += b.StrikeCounts[cls]
	}
	meanW := 1.0
	if sumK > 0 {
		meanW = sumW / float64(sumK)
	}

	out := make(map[fault.Class]Interval, fault.NumClasses)
	for _, cls := range fault.ErrorClasses() {
		k := b.StrikeCounts[cls]
		w := meanW
		if k > 0 {
			w = b.ModeledEvents[cls] / float64(k)
		}
		lo, hi := stats.PoissonCI(k, z)
		overlay := (b.Events[cls] - b.ModeledEvents[cls]) * toFIT
		out[cls] = Interval{
			Lo: lo*w*toFIT + overlay,
			Hi: hi*w*toFIT + overlay,
		}
	}
	return out
}

// String renders an interval for the report tables.
func (iv Interval) String() string {
	return fmt.Sprintf("[%.1f, %.1f]", iv.Lo, iv.Hi)
}
