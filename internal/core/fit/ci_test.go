package fit

import (
	"math"
	"testing"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/stats"
)

// fakeBeam builds a beam result whose modeled events carry a uniform
// stratification weight, so the CI rescaling is easy to check by hand.
func fakeBeam(weight float64, counts map[fault.Class]int) *beam.WorkloadResult {
	bw := &beam.WorkloadResult{
		Workload:      "w",
		Fluence:       1e9,
		Events:        make(map[fault.Class]float64),
		ModeledEvents: make(map[fault.Class]float64),
		StrikeCounts:  counts,
	}
	for cls, k := range counts {
		bw.ModeledEvents[cls] = weight * float64(k)
		bw.Events[cls] = bw.ModeledEvents[cls]
	}
	return bw
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{1, 3}
	for _, c := range []struct {
		b    Interval
		want bool
	}{
		{Interval{2, 4}, true},
		{Interval{3, 5}, true}, // shared endpoint counts as overlap
		{Interval{3.01, 5}, false},
		{Interval{0, 0.99}, false},
		{Interval{0, 1}, true},
		{Interval{1.5, 2.5}, true}, // containment
	} {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v vs %v", a, c.b)
		}
	}
}

// TestCompareCIIntervalsBracket checks both sides' intervals bracket
// their own point estimates and that equal campaigns judge consistent.
func TestCompareCIIntervalsBracket(t *testing.T) {
	w := fakeWorkload()
	inj := FromInjection(w, 0.001)
	// A beam campaign tuned to land near the injection estimates: modeled
	// weights chosen so FIT = events/fluence*13e9 matches PerClass.
	counts := map[fault.Class]int{
		fault.ClassSDC: 40, fault.ClassAppCrash: 30, fault.ClassSysCrash: 20,
	}
	bw := fakeBeam(1e-6, counts)
	for cls, k := range counts {
		// Rescale each class's weight so the point estimate equals the
		// injection FIT exactly.
		want := inj.PerClass[cls] * bw.Fluence / (beam.FluxNYC * beam.FITHours)
		bw.ModeledEvents[cls] = want
		bw.Events[cls] = want
		_ = k
	}
	c := CompareCI(bw, w, 0.001, stats.Z95)
	for _, cls := range fault.ErrorClasses() {
		bi, ii := c.BeamCI[cls], c.InjectionCI[cls]
		if bi.Lo > c.Beam[cls] || bi.Hi < c.Beam[cls] {
			t.Errorf("%v: beam CI %v does not bracket %.3f", cls, bi, c.Beam[cls])
		}
		if ii.Lo > c.Injection[cls] || ii.Hi < c.Injection[cls] {
			t.Errorf("%v: injection CI %v does not bracket %.3f", cls, ii, c.Injection[cls])
		}
		if v := c.Verdict(cls); v != VerdictConsistent {
			t.Errorf("%v: equal-FIT campaigns judged %q, want consistent", cls, v)
		}
	}
}

// TestVerdictDirections drives the beam estimate far above and far below
// the injection interval and checks the verdict direction flips.
func TestVerdictDirections(t *testing.T) {
	w := fakeWorkload()
	hot := fakeBeam(1.0, map[fault.Class]int{fault.ClassSDC: 400})
	c := CompareCI(hot, w, 0.001, stats.Z95)
	if v := c.Verdict(fault.ClassSDC); v != VerdictBeamHigher {
		t.Errorf("hot beam verdict = %q, want %q", v, VerdictBeamHigher)
	}
	// A tiny but precise beam rate far below the injection interval.
	cold := fakeBeam(1e-12, map[fault.Class]int{fault.ClassSDC: 10000})
	c = CompareCI(cold, w, 0.001, stats.Z95)
	if v := c.Verdict(fault.ClassSDC); v != VerdictInjectionHigher {
		t.Errorf("cold beam verdict = %q, want %q", v, VerdictInjectionHigher)
	}
	// Plain Compare carries no intervals: verdicts must be VerdictNone.
	plain := Compare(hot, FromInjection(w, 0.001))
	if v := plain.Verdict(fault.ClassSDC); v != VerdictNone {
		t.Errorf("interval-free verdict = %q, want none", v)
	}
}

// TestInjectionCISumsComponents pins the conservative endpoint-sum
// construction: the workload interval is the FIT-scaled sum of the
// component Wilson intervals.
func TestInjectionCISumsComponents(t *testing.T) {
	w := fakeWorkload()
	ci := injectionCI(w, 0.001, stats.Z95)
	var wantLo, wantHi float64
	for _, comp := range w.Components {
		lo, hi := stats.WilsonCI(comp.Counts[fault.ClassSDC], comp.N, stats.Z95)
		wantLo += 0.001 * float64(comp.SizeBits) * lo
		wantHi += 0.001 * float64(comp.SizeBits) * hi
	}
	got := ci[fault.ClassSDC]
	if math.Abs(got.Lo-wantLo) > 1e-12 || math.Abs(got.Hi-wantHi) > 1e-12 {
		t.Errorf("SDC interval %v, want [%v, %v]", got, wantLo, wantHi)
	}
}

// TestBeamCIZeroCount: a class with no observed strikes still gets an
// informative upper bound via the campaign-wide mean weight.
func TestBeamCIZeroCount(t *testing.T) {
	bw := fakeBeam(2e-6, map[fault.Class]int{fault.ClassSDC: 50})
	ci := beamCI(bw, stats.Z95)
	app := ci[fault.ClassAppCrash]
	if app.Lo != 0 {
		t.Errorf("zero-count lo = %v, want 0", app.Lo)
	}
	if app.Hi <= 0 {
		t.Errorf("zero-count hi = %v, want > 0", app.Hi)
	}
	// hi = PoissonCI(0) upper x mean weight x FIT conversion.
	_, hi0 := stats.PoissonCI(0, stats.Z95)
	want := hi0 * 2e-6 * beam.FluxNYC * beam.FITHours / bw.Fluence
	if math.Abs(app.Hi-want) > 1e-9*want {
		t.Errorf("zero-count hi = %v, want %v", app.Hi, want)
	}
}

// TestBeamCIOverlayShiftsConstant: the analytic platform-overlay events
// shift both endpoints without widening the interval.
func TestBeamCIOverlayShiftsConstant(t *testing.T) {
	base := fakeBeam(1e-6, map[fault.Class]int{fault.ClassSysCrash: 30})
	plain := beamCI(base, stats.Z95)[fault.ClassSysCrash]

	shifted := fakeBeam(1e-6, map[fault.Class]int{fault.ClassSysCrash: 30})
	shifted.Events[fault.ClassSysCrash] += 5e-5 // overlay expectation
	withOverlay := beamCI(shifted, stats.Z95)[fault.ClassSysCrash]

	off := 5e-5 * beam.FluxNYC * beam.FITHours / base.Fluence
	if math.Abs((withOverlay.Lo-plain.Lo)-off) > 1e-9 ||
		math.Abs((withOverlay.Hi-plain.Hi)-off) > 1e-9 {
		t.Errorf("overlay shifted [%v, %v] -> [%v, %v], want constant +%v",
			plain.Lo, plain.Hi, withOverlay.Lo, withOverlay.Hi, off)
	}
}
