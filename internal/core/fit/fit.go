// Package fit implements the paper's Section VI mathematics: converting
// fault-injection AVF into FIT rates through the raw per-bit FIT
// (FIT_component = FIT_raw x Size(bits) x AVF_component), and the
// beam-vs-injection comparisons of Figures 6 through 10.
package fit

import (
	"math"

	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
)

// DefaultFITRawPerBit is the paper's measured L1 raw FIT per bit, used as
// the technology constant for every SRAM structure of the CPU.
const DefaultFITRawPerBit = 2.76e-5

// Injection is a workload's fault-injection campaign converted to FIT.
type Injection struct {
	Workload string
	// PerClass is the summed FIT over all components for each error class.
	PerClass map[fault.Class]float64
	// PerComponent breaks the conversion down per component (Figure 5's
	// underlying data).
	PerComponent map[fault.Component]map[fault.Class]float64
}

// FromInjection converts AVF measurements into FIT rates using the raw
// per-bit FIT.
func FromInjection(w *gefin.WorkloadResult, fitRawPerBit float64) Injection {
	out := Injection{
		Workload:     w.Workload,
		PerClass:     make(map[fault.Class]float64, fault.NumClasses),
		PerComponent: make(map[fault.Component]map[fault.Class]float64, len(w.Components)),
	}
	for _, comp := range w.Components {
		per := make(map[fault.Class]float64, fault.NumClasses)
		for _, cls := range fault.ErrorClasses() {
			per[cls] = fitRawPerBit * float64(comp.SizeBits) * comp.ClassFraction(cls)
			out.PerClass[cls] += per[cls]
		}
		out.PerComponent[comp.Comp] = per
	}
	return out
}

// Total returns the workload's total injection FIT over all error classes.
func (i Injection) Total() float64 {
	var t float64
	for _, c := range fault.ErrorClasses() {
		t += i.PerClass[c]
	}
	return t
}

// SDCApp returns the combined SDC + Application Crash FIT (Figure 9's
// core-attributable metric).
func (i Injection) SDCApp() float64 {
	return i.PerClass[fault.ClassSDC] + i.PerClass[fault.ClassAppCrash]
}

// Ratio expresses the paper's Figures 6-9 convention: divide the larger of
// the two FIT rates by the smaller; the result is positive when the beam
// rate is higher and negative when the injection rate is higher. Zero
// rates are floored to keep ratios finite (the paper's near-zero
// StringSearch SDC case).
func Ratio(beamFIT, injFIT float64) float64 {
	const floor = 1e-3
	b := math.Max(beamFIT, floor)
	i := math.Max(injFIT, floor)
	if b >= i {
		return b / i
	}
	return -i / b
}

// Comparison pairs the two methodologies for one workload.
type Comparison struct {
	Workload  string
	Beam      map[fault.Class]float64
	Injection map[fault.Class]float64
	// BeamCI and InjectionCI are optional per-class FIT confidence
	// intervals — Poisson on the beam side, Wilson on the injection side.
	// Compare leaves them nil; CompareCI fills them.
	BeamCI      map[fault.Class]Interval `json:",omitempty"`
	InjectionCI map[fault.Class]Interval `json:",omitempty"`
}

// Compare builds the per-workload comparison from a beam result and an
// injection conversion.
func Compare(b *beam.WorkloadResult, inj Injection) Comparison {
	c := Comparison{
		Workload:  b.Workload,
		Beam:      make(map[fault.Class]float64, fault.NumClasses),
		Injection: inj.PerClass,
	}
	for _, cls := range fault.ErrorClasses() {
		c.Beam[cls] = b.FIT(cls)
	}
	return c
}

// ClassRatio returns the Figure 6/7/8 ratio for one class.
func (c Comparison) ClassRatio(cls fault.Class) float64 {
	return Ratio(c.Beam[cls], c.Injection[cls])
}

// SDCAppRatio returns the Figure 9 ratio over SDC + Application Crash.
func (c Comparison) SDCAppRatio() float64 {
	return Ratio(
		c.Beam[fault.ClassSDC]+c.Beam[fault.ClassAppCrash],
		c.Injection[fault.ClassSDC]+c.Injection[fault.ClassAppCrash],
	)
}

// TotalRatio returns the all-classes ratio.
func (c Comparison) TotalRatio() float64 {
	var b, i float64
	for _, cls := range fault.ErrorClasses() {
		b += c.Beam[cls]
		i += c.Injection[cls]
	}
	return Ratio(b, i)
}

// Aggregate is Figure 10: the average FIT of the workload set under both
// methodologies at three accumulation levels.
type Aggregate struct {
	BeamSDC, InjSDC       float64
	BeamSDCApp, InjSDCApp float64
	BeamTotal, InjTotal   float64
	RatioSDC, RatioSDCApp float64
	RatioTotal            float64
	Workloads             int
}

// Aggregate computes Figure 10 over a set of comparisons.
func AggregateComparisons(cs []Comparison) Aggregate {
	var a Aggregate
	a.Workloads = len(cs)
	if len(cs) == 0 {
		return a
	}
	for _, c := range cs {
		a.BeamSDC += c.Beam[fault.ClassSDC]
		a.InjSDC += c.Injection[fault.ClassSDC]
		a.BeamSDCApp += c.Beam[fault.ClassSDC] + c.Beam[fault.ClassAppCrash]
		a.InjSDCApp += c.Injection[fault.ClassSDC] + c.Injection[fault.ClassAppCrash]
		for _, cls := range fault.ErrorClasses() {
			a.BeamTotal += c.Beam[cls]
			a.InjTotal += c.Injection[cls]
		}
	}
	n := float64(len(cs))
	for _, v := range []*float64{&a.BeamSDC, &a.InjSDC, &a.BeamSDCApp, &a.InjSDCApp, &a.BeamTotal, &a.InjTotal} {
		*v /= n
	}
	a.RatioSDC = Ratio(a.BeamSDC, a.InjSDC)
	a.RatioSDCApp = Ratio(a.BeamSDCApp, a.InjSDCApp)
	a.RatioTotal = Ratio(a.BeamTotal, a.InjTotal)
	return a
}
