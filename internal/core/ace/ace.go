// Package ace implements ACE lifetime analysis, the single-simulation
// vulnerability-estimation methodology the paper's Section II positions
// between probabilistic models and statistical fault injection (Mukherjee
// et al. [12]; accuracy examined against injection by Wang et al. [28]).
//
// One instrumented golden run measures, for every cache line and TLB
// entry, how long each value remained architecturally correct-execution
// relevant (from fill/write to last consuming read, or to writeback). The
// per-structure AVF estimate is ACE-cycles / (capacity x time). Because
// the analysis is per-line rather than per-bit, it systematically
// over-estimates AVF relative to fault injection — the bias [28]
// quantifies and the AblationACEvsInjection bench reproduces.
package ace

import (
	"fmt"

	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/harness"
	"armsefi/internal/mem"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
)

// Config parameterises an ACE analysis run.
type Config struct {
	Preset soc.Config
	Model  soc.ModelKind
	Scale  bench.Scale
	// Obs attaches the campaign observability layer: each analysis pass
	// reports its per-component AVF estimate and wall time into the
	// metrics registry. Nil (the default) disables instrumentation.
	Obs *obs.Observer `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = soc.PresetModel()
	}
	if c.Model == 0 {
		c.Model = soc.ModelDetailed
	}
	if c.Scale == 0 {
		c.Scale = bench.ScaleTiny
	}
	return c
}

// ComponentEstimate is the ACE result for one structure.
type ComponentEstimate struct {
	Comp fault.Component
	// AVF is the ACE-cycles / (entries x window) estimate.
	AVF float64
	// ValuesTotal and ValuesRead count value lifetimes observed and those
	// consumed at least once.
	ValuesTotal uint64
	ValuesRead  uint64
}

// Result is one workload's ACE analysis.
type Result struct {
	Workload     string
	Scale        bench.Scale
	GoldenCycles uint64
	Components   []ComponentEstimate
}

// Component returns one structure's estimate.
func (r *Result) Component(c fault.Component) (ComponentEstimate, bool) {
	for _, e := range r.Components {
		if e.Comp == c {
			return e, true
		}
	}
	return ComponentEstimate{}, false
}

// Run performs the instrumented golden run for one workload. It needs a
// single simulation — the methodology's selling point — and returns AVF
// estimates for the five memory structures (the register file is outside
// ACE's residency model).
func Run(cfg Config, spec bench.Spec) (*Result, error) {
	cfg = cfg.withDefaults()
	built, err := spec.Build(soc.UserAsmConfig(), cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("ace: %w", err)
	}
	wb, err := harness.New(cfg.Preset, cfg.Model, built)
	if err != nil {
		return nil, fmt.Errorf("ace: %w", err)
	}
	m := wb.Machine
	m.RestoreSnapshot(wb.Snap, false)

	clock := func() uint64 { return m.Core().Cycles() }
	trackers := []struct {
		comp fault.Component
		life *mem.LifetimeTracker
	}{
		{fault.CompL1I, m.Mem.L1I.AttachLifetimeTracker(clock)},
		{fault.CompL1D, m.Mem.L1D.AttachLifetimeTracker(clock)},
		{fault.CompL2, m.Mem.L2.AttachLifetimeTracker(clock)},
		{fault.CompITLB, m.Mem.ITLB.AttachLifetimeTracker(clock)},
		{fault.CompDTLB, m.Mem.DTLB.AttachLifetimeTracker(clock)},
	}
	defer func() {
		m.Mem.L1I.DetachLifetimeTracker()
		m.Mem.L1D.DetachLifetimeTracker()
		m.Mem.L2.DetachLifetimeTracker()
		m.Mem.ITLB.DetachLifetimeTracker()
		m.Mem.DTLB.DetachLifetimeTracker()
	}()

	start := time.Now()
	res := m.Run(wb.Watchdog)
	wall := time.Since(start)
	if !res.CleanExit() {
		return nil, fmt.Errorf("ace: instrumented run of %s failed: %v", spec.Name, res.Outcome)
	}
	out := &Result{
		Workload:     spec.Name,
		Scale:        cfg.Scale,
		GoldenCycles: res.Cycles,
	}
	for _, tr := range trackers {
		total, read := tr.life.Values()
		est := ComponentEstimate{
			Comp:        tr.comp,
			AVF:         tr.life.Finalize(),
			ValuesTotal: total,
			ValuesRead:  read,
		}
		out.Components = append(out.Components, est)
		cfg.Obs.AceRun(spec.Name, est.Comp, est.AVF, wall)
	}
	return out, nil
}
