// External test package: the prune pre-filter made gefin depend on ace,
// so the injection cross-checks here must live outside the package to
// avoid an import cycle.
package ace_test

import (
	"testing"

	"armsefi/internal/bench"
	"armsefi/internal/core/ace"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/gefin"
	"armsefi/internal/mem"
)

func TestCacheLifetimeIntegration(t *testing.T) {
	now := uint64(0)
	clock := func() uint64 { return now }
	dram := mem.NewDRAM(1 << 16)
	bus := mem.NewBus(dram)
	c := mem.NewCache(mem.CacheConfig{Name: "c", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitCycles: 1}, bus)
	tr := c.AttachLifetimeTracker(clock)

	now = 100
	c.Read(0, 4) // fill at 100, read counts on the fill access
	now = 200
	c.Read(0, 4) // last read at 200
	now = 1000
	c.InvalidateAll() // clean eviction: ACE = 200-100
	now = 1100
	avf := tr.Finalize()
	// 100 ACE cycles / (32 lines x 1100 cycles).
	want := 100.0 / (32 * 1100)
	if avf < want*0.9 || avf > want*1.1 {
		t.Fatalf("AVF = %g, want ~%g", avf, want)
	}
}

func TestDirtyDataIsACEUntilDeparture(t *testing.T) {
	now := uint64(0)
	clock := func() uint64 { return now }
	dram := mem.NewDRAM(1 << 16)
	bus := mem.NewBus(dram)
	c := mem.NewCache(mem.CacheConfig{Name: "c", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitCycles: 1}, bus)
	tr := c.AttachLifetimeTracker(clock)
	now = 10
	c.Write(0, 4, 42) // fill (clean value closes instantly) + dirty value opens
	now = 500
	c.FlushAll() // the write-back carries the data: ACE to 500... flush is
	// outside the tracked path (FlushAll bypasses fill), so finalize with
	// the line still live instead:
	now = 600
	avf := tr.Finalize()
	// The dirty value is ACE from 10 to 600 (futures writeback): 590
	// entry-cycles over 32x600.
	want := 590.0 / (32 * 600)
	if avf < want*0.9 || avf > want*1.1 {
		t.Fatalf("AVF = %g, want ~%g", avf, want)
	}
}

func TestACERunProducesEstimates(t *testing.T) {
	spec, _ := bench.ByName("qsort")
	res, err := ace.Run(ace.Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 5 {
		t.Fatalf("components = %d", len(res.Components))
	}
	for _, e := range res.Components {
		if e.AVF < 0 || e.AVF > 1 {
			t.Errorf("%v: AVF %f out of range", e.Comp, e.AVF)
		}
	}
	// The data-carrying structures must show nonzero residency for a
	// sorting workload.
	l1d, _ := res.Component(fault.CompL1D)
	if l1d.AVF == 0 || l1d.ValuesRead == 0 {
		t.Errorf("L1D ACE AVF = %f values=%d", l1d.AVF, l1d.ValuesRead)
	}
	dtlb, _ := res.Component(fault.CompDTLB)
	if dtlb.AVF == 0 {
		t.Error("DTLB ACE AVF = 0")
	}
}

// TestACEOverestimatesInjection reproduces the qualitative finding of [28]:
// per-line ACE analysis yields AVF estimates at or above the statistical
// fault-injection measurement.
func TestACEOverestimatesInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small campaign")
	}
	spec, _ := bench.ByName("qsort")
	aceRes, err := ace.Run(ace.Config{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	injRes, err := gefin.RunWorkload(gefin.Config{
		FaultsPerComponent: 60,
		Seed:               404,
		Components:         []fault.Component{fault.CompDTLB},
	}, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	aceDTLB, _ := aceRes.Component(fault.CompDTLB)
	injDTLB, _ := injRes.Component(fault.CompDTLB)
	margin := injDTLB.ErrorMargin()
	if aceDTLB.AVF < injDTLB.AVF()-2*margin {
		t.Errorf("ACE DTLB AVF %f far below injection %f (margin %f) — over-estimation property violated",
			aceDTLB.AVF, injDTLB.AVF(), margin)
	}
}
