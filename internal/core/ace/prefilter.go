// Campaign pre-filter: the ACE liveness argument applied per planned
// injection instead of per structure. Where the classic analysis in this
// package integrates un-ACE time into an AVF estimate, the pre-filter
// asks the sharper per-fault question — "is THIS bit at THIS cycle
// provably un-ACE?" — against the event-exact liveness log of one
// instrumented golden replay (soc.ReplayLiveness). A decided prediction
// carries the same mechanism verdict the provenance probe would have
// produced, so pruned campaigns stay byte-identical to simulated ones;
// anything the log cannot prove stays undecided and is simulated.
package ace

import (
	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

// Prediction is the pre-filter's verdict for one planned injection. All
// predictions are provably Masked; the mechanism distinguishes why,
// matching fault.MechanismOf's taxonomy exactly.
type Prediction struct {
	// Mech is the masking mechanism simulation would have concluded.
	Mech fault.Mechanism
	// Class is always fault.ClassMasked: a decided pre-filter verdict
	// means the corrupted bits provably never influence execution.
	Class fault.Class
	// Valid and Kernel mirror the injection-context observables
	// (fault.ContextOf): whether the struck slot held live content at the
	// flip instant, and whether that content was kernel-owned.
	Valid  bool
	Kernel bool
}

// Predict classifies one planned injection against the liveness log. The
// second return reports whether the log proves the fault masked; false
// means the fault must be simulated. Register-file faults are always
// undecided (the log covers the memory hierarchy), as are TLB faults in
// the virtual-tag or valid bits, covering reads, dirty evictions, and
// anything hitting a structure whose event recording overflowed.
func Predict(log *soc.LivenessLog, f fault.Fault) (Prediction, bool) {
	var q mem.LiveQuery
	kernelFromAddr := false
	switch f.Comp {
	case fault.CompL1I:
		q, kernelFromAddr = log.L1I.QueryBit(f.Bit, f.Cycle), true
	case fault.CompL1D:
		q, kernelFromAddr = log.L1D.QueryBit(f.Bit, f.Cycle), true
	case fault.CompL2:
		q, kernelFromAddr = log.L2.QueryBit(f.Bit, f.Cycle), true
	case fault.CompITLB:
		q = log.ITLB.QueryBit(f.Bit, f.Cycle)
	case fault.CompDTLB:
		q = log.DTLB.QueryBit(f.Bit, f.Cycle)
	default:
		return Prediction{}, false
	}
	var mech fault.Mechanism
	switch q.Verdict {
	case mem.LiveNeverRead:
		mech = fault.MechNeverRead
	case mem.LiveOverwritten:
		mech = fault.MechOverwritten
	case mem.LiveEvictedClean:
		mech = fault.MechEvictedClean
	case mem.LiveLatent:
		mech = fault.MechLatentCorrupt
	default:
		return Prediction{}, false
	}
	p := Prediction{Mech: mech, Class: fault.ClassMasked, Valid: q.Valid}
	if kernelFromAddr && q.Valid {
		p.Kernel = soc.OwnerOf(q.LineAddr).KernelOwned()
	}
	return p, true
}
