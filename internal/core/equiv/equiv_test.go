package equiv

import (
	"testing"

	"armsefi/internal/core/fault"
	"armsefi/internal/mem"
	"armsefi/internal/soc"
)

// syntheticLog builds a LivenessLog around one tiny instrumented cache
// (as L1D) and one instrumented TLB (as DTLB), driving the clock stamps
// directly: the L1D's set-0 slot is filled at 10 and read at 10, 30 and
// 60, giving bit 0 four quiescent windows over [0,100); the DTLB's
// filled entry is looked up once at 40.
func syntheticLog(t *testing.T) (*soc.LivenessLog, uint64) {
	t.Helper()
	var now uint64
	dram := mem.NewDRAM(1 << 16)
	c := mem.NewCache(mem.CacheConfig{Name: "l1d", SizeBytes: 1 << 10, LineBytes: 32, Ways: 2, HitCycles: 1}, mem.NewBus(dram))
	cl := c.AttachLiveness(&now)
	tlb := mem.NewTLB("dtlb", 4)
	tl := tlb.AttachLiveness(&now)

	now = 10
	c.Read(0, 4)
	now = 30
	c.Read(0, 4)
	tlb.Insert(1, 0x40, true, false)
	now = 40
	if _, ok := tlb.Lookup(1); !ok {
		t.Fatal("lookup missed")
	}
	now = 60
	c.Read(0, 4)

	entry := -1
	for i := 0; i < tlb.Entries(); i++ {
		if tlb.EntryValid(i) {
			entry = i
		}
	}
	if entry < 0 {
		t.Fatal("insert left no valid entry")
	}
	return &soc.LivenessLog{L1D: cl, DTLB: tl}, uint64(entry)
}

func TestKeyOfUndedupableSites(t *testing.T) {
	log, entry := syntheticLog(t)
	base := entry * mem.TLBEntryBits
	cases := []struct {
		name string
		f    fault.Fault
		want bool
	}{
		{"regfile", fault.Fault{Comp: fault.CompRegFile, Bit: 3, Cycle: 20}, false},
		{"tlb vpn tag", fault.Fault{Comp: fault.CompDTLB, Bit: base, Cycle: 20}, false},
		{"tlb valid bit", fault.Fault{Comp: fault.CompDTLB, Bit: base + mem.TLBPhysRegionStart + mem.TLBModelBits, Cycle: 20}, false},
		{"tlb ppn bit", fault.Fault{Comp: fault.CompDTLB, Bit: base + mem.TLBPhysRegionStart, Cycle: 20}, true},
		{"cache data bit", fault.Fault{Comp: fault.CompL1D, Bit: 0, Cycle: 20}, true},
	}
	for _, c := range cases {
		if _, ok := KeyOf(log, c.f); ok != c.want {
			t.Errorf("%s: KeyOf ok = %v, want %v", c.name, ok, c.want)
		}
	}
}

// TestKeyWindowSemantics: same site, same inter-event window → equal
// keys; a covering event between two cycles splits them; distinct sites
// never share a key even with identical event streams.
func TestKeyWindowSemantics(t *testing.T) {
	log, _ := syntheticLog(t)
	at := func(bit, cycle uint64) Key {
		t.Helper()
		k, ok := KeyOf(log, fault.Fault{Comp: fault.CompL1D, Bit: bit, Cycle: cycle})
		if !ok {
			t.Fatalf("KeyOf refused bit %d cycle %d", bit, cycle)
		}
		return k
	}
	// Cycles 11..30 sit between the reads at 10 and 30 (a flip at the
	// stamp itself lands before the event).
	if a, b := at(0, 11), at(0, 30); a != b {
		t.Fatalf("same quiescent window, different keys: %+v vs %+v", a, b)
	}
	if a, b := at(0, 30), at(0, 31); a == b {
		t.Fatalf("flips across a covering read share key %+v", a)
	}
	// Bits 0 and 1 share the byte's event stream but are distinct sites.
	if a, b := at(0, 11), at(1, 11); a == b {
		t.Fatalf("distinct sites share key %+v", a)
	}
}

func TestPartition(t *testing.T) {
	log, entry := syntheticLog(t)
	ppn := entry*mem.TLBEntryBits + mem.TLBPhysRegionStart
	faults := []fault.Fault{
		0: {Comp: fault.CompL1D, Bit: 0, Cycle: 15},    // window (10,30]
		1: {Comp: fault.CompRegFile, Bit: 1, Cycle: 5}, // undedupable
		2: {Comp: fault.CompL1D, Bit: 0, Cycle: 20},    // same window as 0
		3: {Comp: fault.CompL1D, Bit: 0, Cycle: 45},    // window (30,60]
		4: {Comp: fault.CompDTLB, Bit: ppn, Cycle: 20},
		5: {Comp: fault.CompL1D, Bit: 0, Cycle: 25},    // same window as 0
		6: {Comp: fault.CompDTLB, Bit: ppn, Cycle: 30}, // same window as 4
		7: {Comp: fault.CompL1D, Bit: 0, Cycle: 50},    // same window as 3
	}
	classes := Partition(log, faults, nil)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3: %+v", len(classes), classes)
	}
	want := [][]int{{0, 2, 5}, {3, 7}, {4, 6}}
	for i, c := range classes {
		if c.Rep != want[i][0] {
			t.Errorf("class %d rep = %d, want lowest slot %d", i, c.Rep, want[i][0])
		}
		if len(c.Members) != len(want[i]) {
			t.Fatalf("class %d members = %v, want %v", i, c.Members, want[i])
		}
		for j, m := range c.Members {
			if m != want[i][j] {
				t.Errorf("class %d members = %v, want %v", i, c.Members, want[i])
				break
			}
		}
	}

	s := StatsOf(classes)
	if s.Classes != 3 || s.Deduped != 4 || s.MaxClass != 3 {
		t.Fatalf("stats = %+v, want 3 classes, 4 deduped, max 3", s)
	}

	// Excluding the representative slots re-forms the classes around the
	// next-lowest members; singletons vanish.
	excluded := map[int]bool{0: true, 3: true, 4: true}
	classes = Partition(log, faults, func(slot int) bool { return !excluded[slot] })
	if len(classes) != 1 {
		t.Fatalf("filtered partition = %+v, want only the {2,5} class", classes)
	}
	if classes[0].Rep != 2 || len(classes[0].Members) != 2 || classes[0].Members[1] != 5 {
		t.Fatalf("filtered class = %+v, want rep 2 members [2 5]", classes[0])
	}

	if s := StatsOf(nil); s.Classes != 0 || s.Deduped != 0 || s.MaxClass != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}
