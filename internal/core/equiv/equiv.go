// Package equiv partitions planned injections into outcome-equivalence
// classes against the golden liveness replay. Two injections are
// provably equivalent when they strike the SAME fault site (component
// and bit) and their injection cycles fall in the same inter-event
// quiescent window of that site's recorded live-interval stream: the
// faulted machine evolves exactly like golden until the first event
// covering the struck byte, and at that instant its state is
// golden-plus-flip in both cases — so the remainder of the run, and
// therefore the outcome class, context observables, mechanism verdict,
// and final output, are bit-identical. The gefin engine simulates one
// canonical representative per class (the lowest plan slot) and
// materializes its outcome onto every member.
//
// Equivalence is deliberately NOT claimed across distinct sites, even
// with byte-identical event streams: the value consumed at the first
// covering read differs per site, so outcomes may differ. The canonical
// signature therefore pins the exact site and adds the site's
// covering-event fingerprint defensively — a signature mismatch can only
// split classes, never merge inequivalent ones.
package equiv

import (
	"sort"

	"armsefi/internal/core/fault"
	"armsefi/internal/soc"
)

// Key is the canonical signature of one planned injection: the exact
// fault site, the quiescent-window index its cycle falls in, and the
// site's covering-event fingerprint. Two injections with equal Keys are
// provably outcome-equivalent.
type Key struct {
	Comp   fault.Component
	Bit    uint64
	Window int
	Sig    uint64
}

// KeyOf computes the canonical signature of one planned injection
// against the liveness log. ok is false when the site is undedupable:
// register-file faults (the log covers the memory hierarchy only), TLB
// flips outside the physical-page/permission region (they change which
// entries match, which the event stream cannot model), and sites whose
// event recording overflowed.
func KeyOf(log *soc.LivenessLog, f fault.Fault) (Key, bool) {
	var (
		win int
		sig uint64
		ok  bool
	)
	switch f.Comp {
	case fault.CompL1I:
		win, sig, ok = log.L1I.WindowOf(f.Bit, f.Cycle)
	case fault.CompL1D:
		win, sig, ok = log.L1D.WindowOf(f.Bit, f.Cycle)
	case fault.CompL2:
		win, sig, ok = log.L2.WindowOf(f.Bit, f.Cycle)
	case fault.CompITLB:
		win, sig, ok = log.ITLB.WindowOf(f.Bit, f.Cycle)
	case fault.CompDTLB:
		win, sig, ok = log.DTLB.WindowOf(f.Bit, f.Cycle)
	default:
		return Key{}, false
	}
	if !ok {
		return Key{}, false
	}
	return Key{Comp: f.Comp, Bit: f.Bit, Window: win, Sig: sig}, true
}

// Class is one multi-member equivalence class over plan slots.
type Class struct {
	// Rep is the canonical representative: the lowest plan slot of the
	// class — deterministic, so every node of a distributed campaign
	// picks the same one.
	Rep int
	// Members are all slots of the class including Rep, ascending.
	Members []int
}

// Partition groups the plan's injections into equivalence classes.
// faults is indexed by plan slot; eligible (nil for all) filters the
// slots considered — the engine passes the pre-filter's undecided set,
// since a slot already resolved by prediction gains nothing from a
// representative. Only classes with two or more members are returned,
// ordered by representative slot; the partition is a pure function of
// (log, faults, eligible), so every node derives the identical classes.
func Partition(log *soc.LivenessLog, faults []fault.Fault, eligible func(slot int) bool) []Class {
	byKey := make(map[Key][]int)
	for i, f := range faults {
		if eligible != nil && !eligible(i) {
			continue
		}
		k, ok := KeyOf(log, f)
		if !ok {
			continue
		}
		byKey[k] = append(byKey[k], i) // ascending: i is increasing
	}
	classes := make([]Class, 0, len(byKey))
	for _, members := range byKey {
		if len(members) < 2 {
			continue
		}
		classes = append(classes, Class{Rep: members[0], Members: members})
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a].Rep < classes[b].Rep })
	return classes
}

// Stats summarises a partition's class sizes.
type Stats struct {
	// Classes counts the multi-member classes; Deduped the member slots
	// resolved from a representative (Σ size-1); MaxClass the largest
	// class size (0 when there are no classes).
	Classes  int
	Deduped  int
	MaxClass int
}

// StatsOf computes size statistics over a partition.
func StatsOf(classes []Class) Stats {
	var s Stats
	s.Classes = len(classes)
	for _, c := range classes {
		s.Deduped += len(c.Members) - 1
		if n := len(c.Members); n > s.MaxClass {
			s.MaxClass = n
		}
	}
	return s
}
