// Package stats provides the statistical machinery of the paper's
// methodology: Leveugle et al. statistical fault sampling (sample sizes and
// error margins, Table IV), binomial confidence intervals for AVF
// estimates, and Poisson intervals for beam event counts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Z-scores for common confidence levels.
const (
	// Z99 is the two-sided 99%% confidence z-score used throughout the
	// paper's sampling analysis.
	Z99 = 2.5758293035489004
	// Z95 is the two-sided 95%% z-score.
	Z95 = 1.959963984540054
)

// SampleSize returns the Leveugle statistical-fault-injection sample size:
// the number of faults to draw from a population of n bits×cycles for a
// desired error margin e at confidence z, assuming fault-impact probability
// p (0.5 maximises the sample, the paper's initial choice).
//
//	n' = n / (1 + e^2 * (n-1) / (z^2 * p * (1-p)))
func SampleSize(population float64, e, z, p float64) float64 {
	if population <= 0 {
		return 0
	}
	return population / (1 + e*e*(population-1)/(z*z*p*(1-p)))
}

// MarginOfError inverts SampleSize: the error margin achieved by a sample
// of size n from a population, at confidence z and estimated probability p.
// This is how the paper re-adjusts Table IV's margins after the campaign,
// replacing the initial p=0.5 with the measured AVF.
//
//	e = z * sqrt( p*(1-p)/n * (population-n)/(population-1) )
func MarginOfError(n, population float64, z, p float64) float64 {
	if n <= 0 || population <= 1 {
		return 1
	}
	fpc := (population - n) / (population - 1)
	if fpc < 0 {
		fpc = 0
	}
	return z * math.Sqrt(p*(1-p)/n*fpc)
}

// BinomialCI returns the Wilson score interval for k successes in n trials
// at z confidence.
func BinomialCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = centre-half, centre+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// normalTail converts a two-sided z-score into its lower tail probability.
func normalTail(z float64) float64 {
	return (1 - erf(z/math.Sqrt2)) / 2
}

func erf(x float64) float64 { return math.Erf(x) }

// normalQuantile is the Acklam approximation of the standard normal
// inverse CDF.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-39.69683028665376, 220.9460984245205, -275.9285104469687,
		138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := []float64{-54.47609879822406, 161.5858368580409, -155.6989798598866,
		66.80131188771972, -13.28068155288572}
	c := []float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838,
		-2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := []float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996,
		3.754408661907416}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries are skipped.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Summary holds min/max/avg, the shape of the paper's Table IV rows.
type Summary struct {
	Min, Max, Avg float64
}

// Summarise computes a Summary over xs.
func Summarise(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Avg = sum / float64(len(xs))
	return s
}

// String formats a Summary as percentages, Table IV style.
func (s Summary) String() string {
	return fmt.Sprintf("min %.1f%% max %.1f%% avg %.1f%%", 100*s.Min, 100*s.Max, 100*s.Avg)
}
