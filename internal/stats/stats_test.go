package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleSizePaperNumbers(t *testing.T) {
	// The paper's 1,000-fault samples correspond to ~4% margin at 99%
	// confidence with p=0.5 over a huge population (Leveugle et al.).
	n := SampleSize(1e12, 0.0407, Z99, 0.5)
	if n < 950 || n > 1050 {
		t.Errorf("SampleSize = %.0f, want ~1000", n)
	}
}

func TestMarginOfErrorInvertsSampleSize(t *testing.T) {
	f := func(seed uint32) bool {
		e := 0.01 + float64(seed%100)/1000 // 1%..11%
		pop := 1e9
		n := SampleSize(pop, e, Z99, 0.5)
		back := MarginOfError(n, pop, Z99, 0.5)
		return math.Abs(back-e)/e < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarginShrinksWithLowerP(t *testing.T) {
	// Table IV's re-adjustment: a smaller measured AVF gives a tighter
	// margin than the initial p=0.5.
	full := MarginOfError(1000, 1e12, Z99, 0.5)
	tight := MarginOfError(1000, 1e12, Z99, 0.1)
	if tight >= full {
		t.Errorf("margin at p=0.1 (%f) not tighter than p=0.5 (%f)", tight, full)
	}
	if full < 0.039 || full > 0.042 {
		t.Errorf("initial margin = %f, want ~4%%", full)
	}
}

func TestMarginDegenerateInputs(t *testing.T) {
	if MarginOfError(0, 100, Z99, 0.5) != 1 {
		t.Error("zero sample must return the maximal margin")
	}
	if MarginOfError(100, 1, Z99, 0.5) != 1 {
		t.Error("degenerate population must return the maximal margin")
	}
	if m := MarginOfError(100, 100, Z99, 0.5); m != 0 {
		t.Errorf("census margin = %f, want 0", m)
	}
}

func TestBinomialCI(t *testing.T) {
	lo, hi := BinomialCI(50, 100, Z95)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI [%f,%f] does not contain the point estimate", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Errorf("CI [%f,%f] implausibly wide for n=100", lo, hi)
	}
	lo, hi = BinomialCI(0, 100, Z95)
	if lo > 1e-9 || hi < 0.01 || hi > 0.06 {
		t.Errorf("zero-successes CI [%f,%f]", lo, hi)
	}
	lo, hi = BinomialCI(0, 0, Z95)
	if lo != 0 || hi != 1 {
		t.Errorf("empty CI [%f,%f]", lo, hi)
	}
}

func TestBinomialCIProperties(t *testing.T) {
	f := func(k, n uint16) bool {
		kk := int(k)
		nn := int(n)
		if nn == 0 || kk > nn {
			return true
		}
		lo, hi := BinomialCI(kk, nn, Z99)
		p := float64(kk) / float64(nn)
		return lo >= 0 && hi <= 1 && lo <= p && p <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoissonCI(t *testing.T) {
	lo, hi := PoissonCI(100, Z95)
	if lo >= 100 || hi <= 100 {
		t.Errorf("Poisson CI [%f,%f] does not cover the count", lo, hi)
	}
	// Known values: 95% CI for k=100 is roughly [81.4, 121.6].
	if lo < 75 || lo > 88 || hi < 115 || hi > 128 {
		t.Errorf("Poisson CI [%f,%f] off the Garwood values", lo, hi)
	}
	lo, hi = PoissonCI(0, Z95)
	if lo != 0 || hi < 2.9 || hi > 4.5 {
		t.Errorf("zero-count CI [%f,%f], want hi ~3.7", lo, hi)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.95996},
		{0.995, 2.57583},
		{0.025, -1.95996},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("normalQuantile(%f) = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{0.02, 0.04, 0.03}
	s := Summarise(xs)
	if s.Min != 0.02 || s.Max != 0.04 || math.Abs(s.Avg-0.03) > 1e-12 {
		t.Errorf("Summarise = %+v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty aggregates must be zero")
	}
	if Mean(xs) != s.Avg {
		t.Error("Mean disagrees with Summarise")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %f", g)
	}
	if g := GeoMean([]float64{0, 4}); g != 4 {
		t.Errorf("GeoMean with zero = %f, want 4 (zeros skipped)", g)
	}
}
