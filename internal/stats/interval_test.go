package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfidenceZ(t *testing.T) {
	if z := ConfidenceZ(0.99); math.Abs(z-Z99) > 1e-6 {
		t.Errorf("ConfidenceZ(0.99) = %v, want %v", z, Z99)
	}
	if z := ConfidenceZ(0.95); math.Abs(z-Z95) > 1e-6 {
		t.Errorf("ConfidenceZ(0.95) = %v, want %v", z, Z95)
	}
}

func TestNormalCI(t *testing.T) {
	lo, hi := NormalCI(50, 100, Z95)
	// Textbook Wald interval: 0.5 +/- 1.96*sqrt(0.25/100) ~ [0.402, 0.598].
	if math.Abs(lo-0.402) > 0.002 || math.Abs(hi-0.598) > 0.002 {
		t.Errorf("NormalCI = [%f,%f]", lo, hi)
	}
	// Degenerate at the boundary — the Wald pathology Wilson fixes.
	lo, hi = NormalCI(0, 100, Z95)
	if lo != 0 || hi != 0 {
		t.Errorf("NormalCI(0,100) = [%f,%f], want [0,0]", lo, hi)
	}
	lo, hi = NormalCI(0, 0, Z95)
	if lo != 0 || hi != 1 {
		t.Errorf("empty NormalCI = [%f,%f]", lo, hi)
	}
}

func TestClopperPearsonKnownValues(t *testing.T) {
	// Published exact 95% interval for k=5, n=20: [0.0866, 0.4910].
	lo, hi := ClopperPearsonCI(5, 20, Z95)
	if math.Abs(lo-0.0866) > 5e-4 || math.Abs(hi-0.4910) > 5e-4 {
		t.Errorf("ClopperPearsonCI(5,20) = [%f,%f], want ~[0.0866,0.4910]", lo, hi)
	}
	// k=0: lo must be exactly 0, hi = 1-(alpha/2)^(1/n).
	lo, hi = ClopperPearsonCI(0, 20, Z95)
	want := 1 - math.Pow(0.025, 1.0/20)
	if lo != 0 || math.Abs(hi-want) > 1e-6 {
		t.Errorf("ClopperPearsonCI(0,20) = [%f,%f], want [0,%f]", lo, hi, want)
	}
	// k=n mirrors k=0.
	lo, hi = ClopperPearsonCI(20, 20, Z95)
	if hi != 1 || math.Abs(lo-math.Pow(0.025, 1.0/20)) > 1e-6 {
		t.Errorf("ClopperPearsonCI(20,20) = [%f,%f]", lo, hi)
	}
	lo, hi = ClopperPearsonCI(0, 0, Z95)
	if lo != 0 || hi != 1 {
		t.Errorf("empty ClopperPearsonCI = [%f,%f]", lo, hi)
	}
}

// TestIntervalProperties pins the structural invariants of the two
// estimators: both stay inside [0,1] and both contain the point
// estimate at every (k, n).
func TestIntervalProperties(t *testing.T) {
	f := func(k, n uint16) bool {
		nn := int(n)%500 + 1
		kk := int(k) % (nn + 1)
		p := float64(kk) / float64(nn)
		wLo, wHi := WilsonCI(kk, nn, Z99)
		cLo, cHi := ClopperPearsonCI(kk, nn, Z99)
		if wLo < 0 || wHi > 1 || cLo < 0 || cHi > 1 {
			return false
		}
		// Both contain the point estimate; width relationships between the
		// two vary near the boundaries, so only containment is pinned here.
		return p >= wLo-1e-12 && p <= wHi+1e-12 && p >= cLo-1e-9 && p <= cHi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWilsonVsNormalSmallN: at small n near the boundaries the Wald
// interval collapses while Wilson stays honestly wide — Wilson's width
// exceeds the normal approximation's.
func TestWilsonVsNormalSmallN(t *testing.T) {
	for _, n := range []int{5, 10, 20} {
		for _, k := range []int{0, 1, n - 1, n} {
			wLo, wHi := WilsonCI(k, n, Z99)
			nLo, nHi := NormalCI(k, n, Z99)
			if (wHi - wLo) <= (nHi - nLo) {
				t.Errorf("k=%d n=%d: Wilson width %f not wider than normal %f",
					k, n, wHi-wLo, nHi-nLo)
			}
		}
	}
}

// TestWilsonVsNormalLargeN: away from the boundaries at large n the two
// intervals agree to within a small relative tolerance.
func TestWilsonVsNormalLargeN(t *testing.T) {
	f := func(seed uint16) bool {
		n := 50000 + int(seed)%50000
		k := n/4 + int(seed)%(n/2) // p in [0.25, 0.75)
		wLo, wHi := WilsonCI(k, n, Z99)
		nLo, nHi := NormalCI(k, n, Z99)
		return math.Abs(wLo-nLo) < 1e-3 && math.Abs(wHi-nHi) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("regIncBeta(1,1,%f) = %f", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := regIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("regIncBeta(2,2,%f) = %f, want %f", x, got, want)
		}
	}
	if regIncBeta(3, 4, 0) != 0 || regIncBeta(3, 4, 1) != 1 {
		t.Error("regIncBeta boundary values")
	}
}

func TestBetaQuantileRoundTrip(t *testing.T) {
	f := func(sa, sb, sp uint8) bool {
		a := 1 + float64(sa%50)
		b := 1 + float64(sb%50)
		p := (float64(sp) + 0.5) / 256
		x := betaQuantile(p, a, b)
		return math.Abs(regIncBeta(a, b, x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqRuleSpending(t *testing.T) {
	r := SeqRule{TargetMargin: 0.04, Confidence: 0.99}
	if !r.Enabled() {
		t.Fatal("rule with target margin must be enabled")
	}
	if (SeqRule{}).Enabled() {
		t.Fatal("zero rule must be disabled")
	}
	if math.Abs(r.Z()-Z99) > 1e-7 {
		t.Errorf("Z() = %v, want Z99", r.Z())
	}
	// Corrected z always exceeds the plain z, and grows with the look
	// index (later looks spend less alpha).
	prev := r.Z()
	for j := 1; j <= 6; j++ {
		zj := r.ZAt(j)
		if zj <= prev {
			t.Errorf("ZAt(%d) = %f, want > %f", j, zj, prev)
		}
		prev = zj
	}
	// The schedule telescopes: sum over all looks of alpha/(j(j+1)) = alpha.
	sum := 0.0
	for j := 1; j <= 100000; j++ {
		sum += 1 / (float64(j) * float64(j+1))
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("spending schedule sums to %f of alpha, want 1", sum)
	}
}

func TestSeqRuleMet(t *testing.T) {
	r := SeqRule{TargetMargin: 0.04, Confidence: 0.99}
	if r.Met(1, 10, 1) {
		t.Error("10 trials cannot meet a 4% margin")
	}
	// At n=5000 with a low rate, the corrected interval is well under 4%.
	if !r.Met(250, 5000, 3) {
		t.Error("5000 trials at p=0.05 should meet a 4% margin")
	}
	// A sequential stop implies the plain-confidence margin holds too.
	if r.Met(250, 5000, 3) && r.Margin(250, 5000) > r.TargetMargin {
		t.Error("stop decision must imply the reported margin is met")
	}
	if (SeqRule{}).Met(0, 100000, 1) {
		t.Error("disabled rule must never report met")
	}
	if r.Met(0, 0, 1) {
		t.Error("n=0 must never report met")
	}
	if m := r.Margin(0, 0); m != 1 {
		t.Errorf("Margin(0,0) = %f, want 1", m)
	}
	// Margin is monotone decreasing in n at fixed rate.
	if r.Margin(50, 1000) <= r.Margin(500, 10000) {
		t.Error("margin must shrink as n grows")
	}
}
