// Exact Poisson confidence intervals for beam-side event counts: beam
// campaigns observe k discrete error events over a fixed fluence, so the
// FIT-rate uncertainty is Poisson, not binomial. The Garwood interval
// pairs with the injection side's Wilson/Clopper-Pearson intervals in
// the fitcompare significance verdicts.

package stats

import "math"

// PoissonCI returns the exact (Garwood) confidence interval for the mean
// of a Poisson count observed at k events, at z confidence:
//
//	lo = GammaQuantile(alpha/2;   k)
//	hi = GammaQuantile(1-alpha/2; k+1)
//
// (equivalently 0.5*ChiSquareInv at 2k and 2k+2 degrees of freedom),
// with the conventional lo=0 at k==0. Like Clopper-Pearson it is exact
// by inversion of the tail probabilities, so coverage is guaranteed at
// or above nominal.
func PoissonCI(k int, z float64) (lo, hi float64) {
	if k < 0 {
		k = 0
	}
	alpha := 2 * normalTail(z)
	if k > 0 {
		lo = gammaQuantile(alpha/2, float64(k))
	}
	hi = gammaQuantile(1-alpha/2, float64(k+1))
	return lo, hi
}

// gammaQuantile inverts the regularized lower incomplete gamma function:
// the x with P(a, x) = p, found by bisection (P is monotone in x).
func gammaQuantile(p, a float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket the root: the mean a plus a generous number of standard
	// deviations covers any p representable in float64; double until the
	// CDF passes p in case it does not.
	hi := a + 10*math.Sqrt(a+1) + 10
	for regLowerGamma(a, hi) < p {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if regLowerGamma(a, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regLowerGamma computes the regularized lower incomplete gamma function
// P(a, x): the series expansion in its fast-converging region x < a+1,
// the continued fraction for Q(a, x) = 1-P (modified Lentz) elsewhere.
func regLowerGamma(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	norm := math.Exp(-x + a*math.Log(x) - lg)
	if x < a+1 {
		ap := a
		sum := 1.0 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*3e-16 {
				break
			}
		}
		return sum * norm
	}
	const tiny = 1e-30
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 3e-16 {
			break
		}
	}
	return 1 - norm*h
}
