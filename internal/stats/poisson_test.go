package stats

import (
	"math"
	"testing"
)

// TestPoissonCIKnownValues pins the Garwood interval against the
// standard textbook values at 95% confidence.
func TestPoissonCIKnownValues(t *testing.T) {
	cases := []struct {
		k      int
		lo, hi float64
	}{
		{0, 0, 3.6889},
		{1, 0.0253, 5.5716},
		{5, 1.6235, 11.6683},
		{10, 4.7954, 18.3904},
		{100, 81.3639, 121.6272},
	}
	for _, c := range cases {
		lo, hi := PoissonCI(c.k, Z95)
		if math.Abs(lo-c.lo) > 1e-3 || math.Abs(hi-c.hi) > 1e-3 {
			t.Errorf("PoissonCI(%d, Z95) = [%.4f, %.4f], want [%.4f, %.4f]",
				c.k, lo, hi, c.lo, c.hi)
		}
	}
}

// TestPoissonCIProperties checks the structural invariants: the interval
// brackets the observed count, zero counts pin lo to 0, endpoints are
// monotone in k, and higher confidence widens the interval.
func TestPoissonCIProperties(t *testing.T) {
	prevLo, prevHi := -1.0, 0.0
	for k := 0; k <= 200; k++ {
		lo, hi := PoissonCI(k, Z95)
		if lo < 0 || hi <= lo {
			t.Fatalf("PoissonCI(%d): degenerate [%.4f, %.4f]", k, lo, hi)
		}
		if k == 0 && lo != 0 {
			t.Fatalf("PoissonCI(0): lo = %v, want 0", lo)
		}
		if k > 0 && (lo >= float64(k) || hi <= float64(k)) {
			t.Fatalf("PoissonCI(%d): [%.4f, %.4f] does not bracket k", k, lo, hi)
		}
		if lo <= prevLo || hi <= prevHi {
			t.Fatalf("PoissonCI(%d): endpoints not monotone in k", k)
		}
		prevLo, prevHi = lo, hi

		lo99, hi99 := PoissonCI(k, Z99)
		if lo99 > lo || hi99 < hi {
			t.Fatalf("PoissonCI(%d): 99%% interval [%.4f, %.4f] not wider than 95%% [%.4f, %.4f]",
				k, lo99, hi99, lo, hi)
		}
	}
}

// TestRegLowerGamma pins P(a, x) against exact closed forms: P(1, x) is
// 1-exp(-x), and P(a, x) at the mean tends to 1/2 for large a.
func TestRegLowerGamma(t *testing.T) {
	for _, x := range []float64{0.1, 1, 2.5, 10} {
		got := regLowerGamma(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	if p := regLowerGamma(1000, 1000); math.Abs(p-0.5) > 0.02 {
		t.Errorf("P(1000, 1000) = %v, want ~0.5", p)
	}
	// CDF monotonicity across the series/continued-fraction switchover.
	prev := 0.0
	for x := 0.5; x < 30; x += 0.5 {
		p := regLowerGamma(10, x)
		if p < prev {
			t.Fatalf("P(10, %v) = %v < P at previous x (%v)", x, p, prev)
		}
		prev = p
	}
}

// TestGammaQuantileRoundTrip checks quantile/CDF inversion.
func TestGammaQuantileRoundTrip(t *testing.T) {
	for _, a := range []float64{0.5, 1, 3, 20, 150} {
		for _, p := range []float64{0.005, 0.1, 0.5, 0.9, 0.995} {
			x := gammaQuantile(p, a)
			if back := regLowerGamma(a, x); math.Abs(back-p) > 1e-9 {
				t.Errorf("P(%v, GammaQuantile(%v)) = %v, want %v", a, p, back, p)
			}
		}
	}
}
