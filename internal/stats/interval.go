// Binomial interval estimators beyond the Wilson score, and the
// sequential stopping rule driving convergence-aware campaigns: the
// engines watch per-component AVF estimates and stop drawing faults once
// every tracked interval is tighter than the target margin, with an
// alpha-spending correction so that peeking at the data many times keeps
// the overall confidence level honest.

package stats

import "math"

// ConfidenceZ converts a two-sided confidence level (e.g. 0.99) into its
// z-score. ConfidenceZ(0.99) == Z99, ConfidenceZ(0.95) == Z95.
func ConfidenceZ(confidence float64) float64 {
	return NormalQuantile((1 + confidence) / 2)
}

// NormalQuantile is the standard normal inverse CDF (Acklam's
// approximation, |relative error| < 1.15e-9 over the open unit interval).
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

// NormalCI returns the normal-approximation (Wald) interval for k
// successes in n trials at z confidence. Unlike Wilson it can degenerate
// to a zero-width interval at k==0 or k==n; it is kept for comparison
// and for the property tests pinning Wilson's small-n behavior.
func NormalCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	lo, hi = p-half, p+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonCI returns the Wilson score interval for k successes in n trials
// at z confidence — the same interval as BinomialCI, named for symmetry
// with NormalCI and ClopperPearsonCI.
func WilsonCI(k, n int, z float64) (lo, hi float64) {
	return BinomialCI(k, n, z)
}

// ClopperPearsonCI returns the exact (Clopper-Pearson) interval for k
// successes in n trials at z confidence, via beta-distribution quantiles:
//
//	lo = BetaInv(alpha/2;   k,   n-k+1)
//	hi = BetaInv(1-alpha/2; k+1, n-k)
//
// with the conventional lo=0 at k==0 and hi=1 at k==n. It is the most
// conservative of the three intervals (guaranteed >= nominal coverage).
func ClopperPearsonCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	alpha := 2 * normalTail(z)
	kf, nf := float64(k), float64(n)
	if k > 0 {
		lo = betaQuantile(alpha/2, kf, nf-kf+1)
	}
	if k < n {
		hi = betaQuantile(1-alpha/2, kf+1, nf-kf)
	} else {
		hi = 1
	}
	return lo, hi
}

// betaQuantile inverts the regularized incomplete beta function: the x
// with I_x(a,b) = p, found by bisection (the function is monotone in x,
// and 100 halvings pin x to ~1e-30 — far below float64 ULP at [0,1]).
func betaQuantile(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// by Lentz's continued fraction, using the symmetry
// I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the fast-converging region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function (modified Lentz's method).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab, qap, qam := a+b, a+1, a-1
	c, d := 1.0, 1-qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + 2*mf) * (a + 2*mf))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + 2*mf) * (qap + 2*mf))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// SeqRule is the sequential stopping rule: stop once the Wilson interval
// half-width falls at or below TargetMargin, judged at an
// alpha-spending-corrected confidence so that checking repeatedly during
// the campaign cannot inflate the error rate past 1-Confidence.
//
// The spending schedule assigns look j (1-based) the budget
//
//	alpha_j = alpha / (j*(j+1))
//
// whose sum over all j is exactly alpha: the rule stays valid no matter
// how many looks a campaign takes (anytime-valid in the alpha-spending
// sense). Early looks get most of the budget, matching how campaigns
// check often at the start and rarely near the end.
type SeqRule struct {
	// TargetMargin is the half-width (absolute, on the AVF scale) the
	// estimate must reach. Zero disables the rule: Met always reports
	// false.
	TargetMargin float64
	// Confidence is the overall two-sided level (e.g. 0.99). Zero
	// defaults to 0.99, the paper's level.
	Confidence float64
}

// Enabled reports whether the rule is active.
func (r SeqRule) Enabled() bool { return r.TargetMargin > 0 }

// Z returns the plain (uncorrected) z-score for the rule's confidence —
// the one used for *reporting* achieved margins after the decision. The
// paper's levels map onto the exact Z99/Z95 constants so reported
// margins agree bit-for-bit with the Table IV machinery.
func (r SeqRule) Z() float64 {
	c := r.Confidence
	if c == 0 {
		c = 0.99
	}
	switch c {
	case 0.99:
		return Z99
	case 0.95:
		return Z95
	}
	return ConfidenceZ(c)
}

// ZAt returns the corrected z-score for the j-th look (1-based): the
// two-sided quantile of the look's spent alpha_j. Always >= Z, so a
// sequential stop implies the plain-confidence margin is met too.
func (r SeqRule) ZAt(look int) float64 {
	if look < 1 {
		look = 1
	}
	c := r.Confidence
	if c == 0 {
		c = 0.99
	}
	alpha := (1 - c) / (float64(look) * float64(look+1))
	return NormalQuantile(1 - alpha/2)
}

// Met reports whether k successes in n trials satisfy the rule at the
// j-th look: the Wilson half-width at the look's corrected z-score is at
// or below TargetMargin.
func (r SeqRule) Met(k, n, look int) bool {
	if !r.Enabled() || n == 0 {
		return false
	}
	lo, hi := WilsonCI(k, n, r.ZAt(look))
	return (hi-lo)/2 <= r.TargetMargin
}

// Margin returns the achieved Wilson half-width at the rule's plain
// confidence — what dashboards and reports display.
func (r SeqRule) Margin(k, n int) float64 {
	if n == 0 {
		return 1
	}
	lo, hi := WilsonCI(k, n, r.Z())
	return (hi - lo) / 2
}
