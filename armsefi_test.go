package armsefi

import (
	"testing"

	"armsefi/internal/soc"
)

func TestFacadeEndToEnd(t *testing.T) {
	specs := Workloads()
	if len(specs) != 13 {
		t.Fatalf("Workloads() = %d, want 13", len(specs))
	}
	spec, ok := WorkloadByName("crc32")
	if !ok {
		t.Fatal("crc32 missing")
	}
	built, err := spec.Build(soc.UserAsmConfig(), ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := NewWorkbench(PresetModel(), ModelDetailed, built)
	if err != nil {
		t.Fatal(err)
	}
	cls := wb.RunFault(Fault{Comp: CompL1D, Bit: 3, Cycle: wb.Golden.Cycles / 2})
	if cls < Masked || cls > SysCrash {
		t.Fatalf("class %v", cls)
	}
}

func TestFacadeCampaignsAndComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	specs := []Workload{}
	for _, n := range []string{"crc32"} {
		s, _ := WorkloadByName(n)
		specs = append(specs, s)
	}
	beamRes, err := RunBeam(BeamConfig{Seed: 4, BeamHours: 1, StrikesPerComponent: 4}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	injRes, err := RunInjection(InjectionConfig{Seed: 4, FaultsPerComponent: 10}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cmps := CompareFIT(beamRes, injRes, 0)
	if len(cmps) != 1 || cmps[0].Workload != "crc32" {
		t.Fatalf("comparisons = %+v", cmps)
	}
}

func TestPresets(t *testing.T) {
	z, g := PresetZynq(), PresetModel()
	if z.Name == g.Name {
		t.Error("presets indistinguishable")
	}
	m, err := NewMachine(z, ModelAtomic)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(50_000_000); err != nil {
		t.Fatal(err)
	}
}
