// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Heavy campaigns (both methodologies over all thirteen workloads) run
// once per process and are shared by every figure benchmark; tables are
// printed to stdout as they become available, and headline numbers are
// attached as benchmark metrics. EXPERIMENTS.md records the mapping to the
// paper's numbers.
package armsefi

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"armsefi/internal/bench"
	"armsefi/internal/core/ace"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/core/harness"
	"armsefi/internal/cpu"
	"armsefi/internal/obs"
	"armsefi/internal/report"
	"armsefi/internal/rtl"
	"armsefi/internal/soc"
)

// Campaign sizes for the benchmark harness: large enough for stable
// shapes, small enough to finish on a laptop. The cmd tools run the
// paper-sized campaigns (1000 faults/component, 20+ beam hours).
const (
	benchFaultsPerComponent  = 40
	benchBeamHours           = 20
	benchStrikesPerComponent = 15
	benchSeed                = 2019
)

// campaignData holds the shared campaign results.
type campaignData struct {
	once        sync.Once
	err         error
	beam        *beam.Result
	inj         *gefin.Result
	comparisons []fit.Comparison
	elapsed     time.Duration
}

var campaigns campaignData

// sharedCampaigns runs both methodology campaigns over all 13 workloads
// once per process, parallelised by the campaign engines' own worker
// pools (bounded at NumCPU live machines each).
func sharedCampaigns(b *testing.B) *campaignData {
	b.Helper()
	campaigns.once.Do(func() {
		start := time.Now()
		specs := bench.All()
		beamRes, err := beam.Run(beam.Config{
			Seed:                benchSeed,
			BeamHours:           benchBeamHours,
			StrikesPerComponent: benchStrikesPerComponent,
			Workers:             runtime.NumCPU(),
		}, specs, nil)
		if err != nil {
			campaigns.err = err
			return
		}
		injRes, err := gefin.Run(gefin.Config{
			Seed:               benchSeed,
			FaultsPerComponent: benchFaultsPerComponent,
			Workers:            runtime.NumCPU(),
		}, specs, nil)
		if err != nil {
			campaigns.err = err
			return
		}
		campaigns.beam = beamRes
		campaigns.inj = injRes
		for i := range injRes.Workloads {
			inj := fit.FromInjection(&injRes.Workloads[i], fit.DefaultFITRawPerBit)
			if bw, ok := beamRes.Workload(inj.Workload); ok {
				campaigns.comparisons = append(campaigns.comparisons, fit.Compare(bw, inj))
			}
		}
		campaigns.elapsed = time.Since(start)
		fmt.Printf("[campaigns: %d workloads x (%d beam strikes + %d x %d faults) in %v]\n",
			len(specs), benchStrikesPerComponent*fault.NumComponents,
			fault.NumComponents, benchFaultsPerComponent, campaigns.elapsed.Round(time.Second))
	})
	if campaigns.err != nil {
		b.Fatalf("campaigns: %v", campaigns.err)
	}
	return &campaigns
}

var printOnce sync.Map

// printTable prints a rendered table once per process.
func printTable(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// --- Table I ---------------------------------------------------------------

func benchWorkload(b *testing.B) *bench.Built {
	b.Helper()
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	return built
}

func benchSimRate(b *testing.B, model soc.ModelKind) {
	b.Helper()
	built := benchWorkload(b)
	m, err := soc.NewMachine(soc.PresetModel(), model)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.LoadApp(built.Program); err != nil {
		b.Fatal(err)
	}
	if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
		b.Fatal(err)
	}
	if err := m.Boot(harness.BootBudget); err != nil {
		b.Fatal(err)
	}
	snap := m.SaveSnapshot()
	var cycles uint64
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RestoreSnapshot(snap, false)
		res := m.Run(harness.GoldenBudget)
		cycles += res.Cycles
	}
	b.StopTimer()
	rate := float64(cycles) / time.Since(start).Seconds()
	b.ReportMetric(rate, "cycles/sec")
}

// BenchmarkTableI_Architecture measures the atomic (architecture-level)
// model's simulation throughput — Table I, row 2.
func BenchmarkTableI_Architecture(b *testing.B) { benchSimRate(b, soc.ModelAtomic) }

// BenchmarkTableI_Microarchitecture measures the detailed out-of-order
// model's throughput — Table I, row 3.
func BenchmarkTableI_Microarchitecture(b *testing.B) { benchSimRate(b, soc.ModelDetailed) }

// BenchmarkTableI_Native measures the host-native reference computation —
// Table I, row 1 (cycles approximated as inner-loop operations).
func BenchmarkTableI_Native(b *testing.B) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	start := time.Now()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += nativeCRC(data)
	}
	b.StopTimer()
	_ = sink
	b.ReportMetric(float64(b.N)*float64(len(data))*9/time.Since(start).Seconds(), "cycles/sec")
}

func nativeCRC(data []byte) uint32 {
	var tab [256]uint32
	for i := range tab {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ c>>1
			} else {
				c >>= 1
			}
		}
		tab[i] = c
	}
	crc := ^uint32(0)
	for _, v := range data {
		crc = crc>>8 ^ tab[(crc^uint32(v))&0xFF]
	}
	return ^crc
}

// BenchmarkTableI_RTL measures the gate-level ALU network — Table I, row 4
// (one network evaluation per cycle).
func BenchmarkTableI_RTL(b *testing.B) {
	alu := rtl.NewALU()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alu.Exec(rtl.ALUOp(i%int(rtl.NumALUOps)), uint32(i), uint32(i*7))
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "cycles/sec")
}

// --- Tables II & III -------------------------------------------------------

// BenchmarkTableII_Setups renders the platform comparison table.
func BenchmarkTableII_Setups(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.TableII(soc.PresetZynq(), soc.PresetModel())
	}
	printTable("table2", s)
}

// BenchmarkTableIII_Benchmarks renders the workload/input table.
func BenchmarkTableIII_Benchmarks(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = report.TableIII(bench.All())
	}
	printTable("table3", s)
}

// --- Table IV --------------------------------------------------------------

// BenchmarkTableIV_ErrorMargins computes the Leveugle error margins of the
// shared injection campaign.
func BenchmarkTableIV_ErrorMargins(b *testing.B) {
	c := sharedCampaigns(b)
	var s string
	for i := 0; i < b.N; i++ {
		s = report.TableIV(c.inj)
	}
	printTable("table4", s)
	var avg float64
	n := 0
	for _, w := range c.inj.Workloads {
		for _, comp := range w.Components {
			avg += comp.ErrorMargin()
			n++
		}
	}
	b.ReportMetric(100*avg/float64(n), "avg-margin-%")
}

// --- Figures 3-10 ----------------------------------------------------------

// BenchmarkFig3_BeamFIT reports the beam campaign FIT rates.
func BenchmarkFig3_BeamFIT(b *testing.B) {
	c := sharedCampaigns(b)
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig3(c.beam)
	}
	printTable("fig3", s)
	var total float64
	for i := range c.beam.Workloads {
		total += c.beam.Workloads[i].TotalFIT()
	}
	b.ReportMetric(total/float64(len(c.beam.Workloads)), "avg-total-FIT")
}

// BenchmarkFig4_AVF reports the fault-injection classification.
func BenchmarkFig4_AVF(b *testing.B) {
	c := sharedCampaigns(b)
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig4(c.inj)
	}
	printTable("fig4", s)
	var avf float64
	n := 0
	for _, w := range c.inj.Workloads {
		for _, comp := range w.Components {
			avf += comp.AVF()
			n++
		}
	}
	b.ReportMetric(100*avf/float64(n), "avg-AVF-%")
}

// BenchmarkFig5_InjectionFIT reports the AVF-to-FIT conversion.
func BenchmarkFig5_InjectionFIT(b *testing.B) {
	c := sharedCampaigns(b)
	var injs []fit.Injection
	var s string
	for i := 0; i < b.N; i++ {
		injs = injs[:0]
		for j := range c.inj.Workloads {
			injs = append(injs, fit.FromInjection(&c.inj.Workloads[j], fit.DefaultFITRawPerBit))
		}
		s = report.Fig5(injs)
	}
	printTable("fig5", s)
	var total float64
	for _, in := range injs {
		total += in.Total()
	}
	b.ReportMetric(total/float64(len(injs)), "avg-total-FIT")
}

func benchRatioFigure(b *testing.B, key, title string, cls fault.Class) {
	c := sharedCampaigns(b)
	var s string
	for i := 0; i < b.N; i++ {
		s = report.FigRatio(title, c.comparisons, cls)
	}
	printTable(key, s)
	var logsum float64
	for _, cmp := range c.comparisons {
		logsum += math.Log(math.Abs(cmp.ClassRatio(cls)))
	}
	b.ReportMetric(math.Exp(logsum/float64(len(c.comparisons))), "geomean-ratio")
}

// BenchmarkFig6_SDCComparison reproduces the SDC FIT comparison.
func BenchmarkFig6_SDCComparison(b *testing.B) {
	benchRatioFigure(b, "fig6", "Figure 6: SDC FIT comparison (beam vs injection)", fault.ClassSDC)
}

// BenchmarkFig7_AppCrashComparison reproduces the Application Crash
// comparison.
func BenchmarkFig7_AppCrashComparison(b *testing.B) {
	benchRatioFigure(b, "fig7", "Figure 7: Application Crash FIT comparison", fault.ClassAppCrash)
}

// BenchmarkFig8_SysCrashComparison reproduces the System Crash comparison.
func BenchmarkFig8_SysCrashComparison(b *testing.B) {
	benchRatioFigure(b, "fig8", "Figure 8: System Crash FIT comparison", fault.ClassSysCrash)
}

// BenchmarkFig9_SDCAppCrashComparison reproduces the combined comparison.
func BenchmarkFig9_SDCAppCrashComparison(b *testing.B) {
	c := sharedCampaigns(b)
	var s string
	for i := 0; i < b.N; i++ {
		s = report.Fig9(c.comparisons)
	}
	printTable("fig9", s)
	var logsum float64
	for _, cmp := range c.comparisons {
		logsum += math.Log(math.Abs(cmp.SDCAppRatio()))
	}
	b.ReportMetric(math.Exp(logsum/float64(len(c.comparisons))), "geomean-ratio")
}

// BenchmarkFig10_Aggregate reproduces the headline aggregate comparison.
func BenchmarkFig10_Aggregate(b *testing.B) {
	c := sharedCampaigns(b)
	var agg fit.Aggregate
	var s string
	for i := 0; i < b.N; i++ {
		agg = fit.AggregateComparisons(c.comparisons)
		s = report.Fig10(agg)
	}
	printTable("fig10", s)
	b.ReportMetric(math.Abs(agg.RatioSDC), "sdc-ratio")
	b.ReportMetric(math.Abs(agg.RatioSDCApp), "sdcapp-ratio")
	b.ReportMetric(math.Abs(agg.RatioTotal), "total-ratio")
}

// --- Section IV-D counters ------------------------------------------------

// BenchmarkCounterDeviation runs one workload on both platform presets and
// reports the worst counter deviation (expected in the TLB counters, per
// the paper and [71]).
func BenchmarkCounterDeviation(b *testing.B) {
	spec, _ := bench.ByName("qsort")
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	run := func(preset soc.Config) cpu.Counters {
		m, err := soc.NewMachine(preset, soc.ModelDetailed)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadApp(built.Program); err != nil {
			b.Fatal(err)
		}
		if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
			b.Fatal(err)
		}
		if err := m.Boot(harness.BootBudget); err != nil {
			b.Fatal(err)
		}
		m.Run(harness.GoldenBudget)
		return m.Core().Counters()
	}
	var zc, mc cpu.Counters
	for i := 0; i < b.N; i++ {
		zc = run(soc.PresetZynq())
		mc = run(soc.PresetModel())
	}
	printTable("counters", report.CounterDeviation("qsort", zc, mc))
	worst := 0.0
	for _, name := range cpu.CounterNames {
		zv, _ := zc.Value(name)
		mv, _ := mc.Value(name)
		if zv == 0 {
			continue
		}
		dev := math.Abs(float64(mv)-float64(zv)) / float64(zv)
		if dev > worst {
			worst = dev
		}
	}
	b.ReportMetric(100*worst, "worst-deviation-%")
}

// --- FIT-raw probe ----------------------------------------------------------

// BenchmarkFITRawProbe measures the raw per-bit FIT with the Section VI L1
// pattern probe under the beam.
func BenchmarkFITRawProbe(b *testing.B) {
	var measured float64
	for i := 0; i < b.N; i++ {
		var err error
		measured, _, err = beam.MeasureFITRaw(beam.Config{
			Seed:                int64(benchSeed + i),
			BeamHours:           40,
			StrikesPerComponent: 40,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fitraw", fmt.Sprintf(
		"FIT-raw probe: measured %.3g FIT/bit (configured technology: %.3g FIT/bit; paper: 2.76e-5)\n",
		measured, beam.DefaultBitXS*beam.FluxNYC*beam.FITHours))
	b.ReportMetric(measured*1e5, "FITraw-e5")
}

// --- Ablations ---------------------------------------------------------------

func ablationWorkbench(b *testing.B, model soc.ModelKind) *harness.Workbench {
	b.Helper()
	spec, _ := bench.ByName("qsort")
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	wb, err := harness.New(soc.PresetModel(), model, built)
	if err != nil {
		b.Fatal(err)
	}
	return wb
}

// avfOf runs n faults on comp and returns the AVF.
func avfOf(wb *harness.Workbench, rng *rand.Rand, comp fault.Component, n int, warm bool) float64 {
	bad := 0
	size := fault.SizeBits(wb.Machine, comp)
	for i := 0; i < n; i++ {
		f := fault.Fault{
			Comp:  comp,
			Bit:   uint64(rng.Int63n(int64(size))),
			Cycle: uint64(rng.Int63n(int64(wb.Golden.Cycles))),
		}
		var cls fault.Class
		if warm {
			cls = wb.RunFaultWarm(f)
		} else {
			cls = wb.RunFault(f)
		}
		if cls != fault.ClassMasked {
			bad++
		}
	}
	return float64(bad) / float64(n)
}

// BenchmarkAblation_TagArrays contrasts data-array and tag-array cache
// injection: tag flips are overwhelmingly benign (misses that refill), as
// the paper observes for the TLB virtual tags.
func BenchmarkAblation_TagArrays(b *testing.B) {
	wb := ablationWorkbench(b, soc.ModelDetailed)
	rng := rand.New(rand.NewSource(benchSeed))
	const n = 40
	var dataAVF, tagAVF float64
	for i := 0; i < b.N; i++ {
		dataAVF = avfOf(wb, rng, fault.CompL1D, n, false)
		tagAVF = avfOf(wb, rng, fault.CompL1DTag, n, false)
	}
	printTable("abl-tag", fmt.Sprintf(
		"Ablation (tag arrays): L1D data AVF %.3f vs L1D tag AVF %.3f over %d faults each\n",
		dataAVF, tagAVF, n))
	b.ReportMetric(dataAVF, "data-AVF")
	b.ReportMetric(tagAVF, "tag-AVF")
}

// BenchmarkAblation_MultiBit contrasts single- and adjacent-double-bit
// upsets on the register file (a structure with enough AVF for the
// difference to resolve at bench sample sizes) — the fault-model
// simplification discussed in Section II.
func BenchmarkAblation_MultiBit(b *testing.B) {
	wb := ablationWorkbench(b, soc.ModelDetailed)
	rng := rand.New(rand.NewSource(benchSeed))
	const n = 100
	size := fault.SizeBits(wb.Machine, fault.CompRegFile)
	var single, double float64
	for i := 0; i < b.N; i++ {
		single = avfOf(wb, rng, fault.CompRegFile, n, false)
		bad := 0
		for j := 0; j < n; j++ {
			bit := uint64(rng.Int63n(int64(size - 1)))
			cycle := uint64(rng.Int63n(int64(wb.Golden.Cycles)))
			wb.Machine.RestoreSnapshot(wb.Snap, false)
			res := wb.Machine.RunWithInjection(wb.Watchdog, cycle, func() {
				fault.Apply(wb.Machine, fault.Fault{Comp: fault.CompRegFile, Bit: bit})
				fault.Apply(wb.Machine, fault.Fault{Comp: fault.CompRegFile, Bit: bit + 1})
			})
			if fault.Classify(res, wb.Built.Golden, wb.Machine.Cfg.TimerPeriod) != fault.ClassMasked {
				bad++
			}
		}
		double = float64(bad) / n
	}
	printTable("abl-multibit", fmt.Sprintf(
		"Ablation (multi-bit, register file): single-bit AVF %.3f vs adjacent-double-bit AVF %.3f\n",
		single, double))
	b.ReportMetric(single, "single-AVF")
	b.ReportMetric(double, "double-AVF")
}

// BenchmarkAblation_WarmCaches contrasts GeFIN's cache-reset-per-run
// methodology with warm-cache (live-board) injection. The deterministic
// mechanism — kernel lines resident and exposed in the warm state — is
// reported directly via the residency profile alongside the sampled AVFs.
func BenchmarkAblation_WarmCaches(b *testing.B) {
	wb := ablationWorkbench(b, soc.ModelDetailed)
	rng := rand.New(rand.NewSource(benchSeed))
	const n = 60
	var cold, warm float64
	var coldKernel, warmKernel int
	for i := 0; i < b.N; i++ {
		wb.Machine.RestoreSnapshot(wb.Snap, false)
		coldKernel = soc.ProfileCache(wb.Machine.Mem.L2).KernelLines()
		wb.Machine.RestoreSnapshot(wb.Snap, true)
		warmKernel = soc.ProfileCache(wb.Machine.Mem.L2).KernelLines()
		cold = avfOf(wb, rng, fault.CompL2, n, false)
		warm = avfOf(wb, rng, fault.CompL2, n, true)
	}
	printTable("abl-warm", fmt.Sprintf(
		"Ablation (warm caches): kernel-owned L2 lines %d cold vs %d warm; sampled L2 AVF %.3f cold vs %.3f warm\n",
		coldKernel, warmKernel, cold, warm))
	b.ReportMetric(cold, "cold-AVF")
	b.ReportMetric(warm, "warm-AVF")
	b.ReportMetric(float64(warmKernel), "warm-kernel-lines")
}

// BenchmarkAblation_AtomicInjection contrasts injection on the two CPU
// models: the functional-model shortcut gem5 users sometimes take.
func BenchmarkAblation_AtomicInjection(b *testing.B) {
	detailed := ablationWorkbench(b, soc.ModelDetailed)
	atomic := ablationWorkbench(b, soc.ModelAtomic)
	rng := rand.New(rand.NewSource(benchSeed))
	const n = 50
	var dAVF, aAVF float64
	for i := 0; i < b.N; i++ {
		dAVF = avfOf(detailed, rng, fault.CompL1D, n, false)
		aAVF = avfOf(atomic, rng, fault.CompL1D, n, false)
	}
	printTable("abl-atomic", fmt.Sprintf(
		"Ablation (CPU model): L1D AVF detailed %.3f vs atomic %.3f\n", dAVF, aAVF))
	b.ReportMetric(dAVF, "detailed-AVF")
	b.ReportMetric(aAVF, "atomic-AVF")
}

// BenchmarkAblation_PredictorSizing measures the front-end sensitivity of
// the detailed model: IPC with the full predictor versus a minimal one
// (the documented model/hardware front-end gap of Section IV-D).
func BenchmarkAblation_PredictorSizing(b *testing.B) {
	spec, _ := bench.ByName("dijkstra")
	built, err := spec.Build(soc.UserAsmConfig(), bench.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	ipc := func(btb, pred int) float64 {
		cfg := soc.PresetModel()
		cfg.BTBEntries = btb
		cfg.PredictorEntries = pred
		m, err := soc.NewMachine(cfg, soc.ModelDetailed)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadApp(built.Program); err != nil {
			b.Fatal(err)
		}
		if err := m.PokeBytes(built.InputAddr, built.Input); err != nil {
			b.Fatal(err)
		}
		if err := m.Boot(harness.BootBudget); err != nil {
			b.Fatal(err)
		}
		res := m.Run(harness.GoldenBudget)
		return float64(res.Instructions) / float64(res.Cycles)
	}
	var full, minimal float64
	for i := 0; i < b.N; i++ {
		full = ipc(256, 512)
		minimal = ipc(4, 4)
	}
	printTable("abl-pred", fmt.Sprintf(
		"Ablation (predictor sizing): dijkstra IPC %.3f with 256/512 entries vs %.3f with 4/4\n",
		full, minimal))
	b.ReportMetric(full, "ipc-full")
	b.ReportMetric(minimal, "ipc-minimal")
}

// BenchmarkAblation_ACEvsInjection contrasts single-simulation ACE
// lifetime analysis with statistical fault injection (the Section II
// methodology ladder; ACE's over-estimation bias per [28]).
func BenchmarkAblation_ACEvsInjection(b *testing.B) {
	spec, _ := bench.ByName("qsort")
	var aceRes *ace.Result
	var injRes *gefin.WorkloadResult
	for i := 0; i < b.N; i++ {
		var err error
		aceRes, err = ace.Run(ace.Config{}, spec)
		if err != nil {
			b.Fatal(err)
		}
		injRes, err = gefin.RunWorkload(gefin.Config{
			Seed:               benchSeed,
			FaultsPerComponent: 50,
			Components:         []fault.Component{fault.CompL1D, fault.CompDTLB},
		}, spec, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	var rows []report.ACERow
	for _, est := range aceRes.Components {
		if inj, ok := injRes.Component(est.Comp); ok {
			rows = append(rows, report.ACERow{
				Comp: est.Comp, ACEAVF: est.AVF,
				InjectionAVF: inj.AVF(), Margin: inj.ErrorMargin(),
			})
		}
	}
	printTable("abl-ace", report.ACEComparison("qsort", rows))
	if l1d, ok := aceRes.Component(fault.CompL1D); ok {
		b.ReportMetric(l1d.AVF, "ace-l1d-AVF")
	}
}

// BenchmarkCampaignParallel measures the parallel campaign engine's
// speedup on a tiny crc32 campaign: the same seeded fault plan executed
// with one worker (the sequential engine) and with every host core. The
// Result is bit-identical in both arms — only the wall clock moves.
func BenchmarkCampaignParallel(b *testing.B) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := gefin.RunWorkload(gefin.Config{
					Seed:               benchSeed,
					FaultsPerComponent: 24,
					Workers:            workers,
					Components: []fault.Component{
						fault.CompRegFile, fault.CompL1D, fault.CompDTLB,
					},
				}, spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.GoldenCycles == 0 {
					b.Fatal("empty campaign result")
				}
			}
		})
	}
}

// BenchmarkCampaignCheckpointed measures the checkpoint ladder's speedup
// on the BenchmarkCampaignParallel campaign: the same seeded fault plan at
// full worker count, once with the ladder off and once with it on. The
// aggregated Result is bit-identical in both arms (pinned by
// TestLadderAndWorkerInvariance) — only the wall clock moves. The
// acceptance floor is 2x throughput on the checkpointed arm; the measured
// ratio is recorded in BENCH_checkpoint.json.
func BenchmarkCampaignCheckpointed(b *testing.B) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	run := func(b *testing.B, every uint64) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := gefin.RunWorkload(gefin.Config{
				Seed:               benchSeed,
				FaultsPerComponent: 24,
				Workers:            runtime.NumCPU(),
				CheckpointEvery:    every,
				Components: []fault.Component{
					fault.CompRegFile, fault.CompL1D, fault.CompDTLB,
				},
			}, spec, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.GoldenCycles == 0 {
				b.Fatal("empty campaign result")
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, 0) })
	// The default spacing adapts to the short tiny-scale golden run (see
	// harness.BuildLadder), so the arm measures exactly what the default
	// -checkpoint-every flag gives.
	b.Run("checkpointed", func(b *testing.B) { run(b, soc.DefaultCheckpointEvery) })
}

// BenchmarkCampaignPruned measures the ACE pre-filter's speedup on a
// crc32 campaign over the prune-eligible components (caches and TLBs):
// the same seeded fault plan with the checkpoint ladder on, once
// simulating every injection and once pruning the provably-masked ones
// to predicted verdicts. The aggregated Result is bit-identical in both
// arms (pinned by TestPruneResultInvariance) — only the wall clock
// moves. The headline acceptance ratio is cross-benchmark: the pruned
// arm (96 planned injections) must land at least 3x under
// BenchmarkCampaignCheckpointed/checkpointed (72 injections, no
// pre-filter) from the same run, with ~10x the target against the
// plain arm; the within-campaign ratio is bounded by the genuinely
// undecided (live-hit, often crashing) injections that must always
// simulate. Measured numbers and the predicted-fraction floor are
// recorded in BENCH_prune.json.
func BenchmarkCampaignPruned(b *testing.B) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	specs := []bench.Spec{spec}
	run := func(b *testing.B, prune bool) {
		b.Helper()
		var frac float64
		for i := 0; i < b.N; i++ {
			res, err := gefin.Run(gefin.Config{
				Seed:               benchSeed,
				FaultsPerComponent: 24,
				Workers:            runtime.NumCPU(),
				CheckpointEvery:    soc.DefaultCheckpointEvery,
				Prune:              prune,
				Components: []fault.Component{
					fault.CompL1I, fault.CompL1D, fault.CompL2, fault.CompDTLB,
				},
			}, specs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Workloads) == 0 || res.Workloads[0].GoldenCycles == 0 {
				b.Fatal("empty campaign result")
			}
			if prune {
				if res.Prune == nil || res.Prune.Predicted == 0 {
					b.Fatal("pruned arm resolved no injections by prediction")
				}
				frac = res.Prune.PredictedFraction()
			}
		}
		if prune {
			b.ReportMetric(frac, "predicted-frac")
		}
	}
	b.Run("checkpointed", func(b *testing.B) { run(b, false) })
	b.Run("pruned", func(b *testing.B) { run(b, true) })
}

// BenchmarkCampaignDeduped measures equivalence-class deduplication's
// within-campaign speedup on an fft DTLB campaign riding on the ACE
// pre-filter: the same seeded plan with the ladder and pruning on, once
// simulating every prune-undecided injection and once resolving
// equivalence-class members from their shard-local representative's
// outcome. The aggregated Result is bit-identical in both arms (pinned
// by TestDedupResultInvariance) — only the wall clock moves. At this
// plan size over half of the undecided injections are class members
// (the plan is dense enough that most (site, quiescent-window) pairs
// repeat), so the deduped arm must land at least 1.8x under the pruned
// arm — the ratio guard recorded in BENCH_dedup.json; the deduped-frac
// metric records the member split.
func BenchmarkCampaignDeduped(b *testing.B) {
	spec, ok := bench.ByName("fft")
	if !ok {
		b.Fatal("fft missing")
	}
	specs := []bench.Spec{spec}
	run := func(b *testing.B, dedup bool) {
		b.Helper()
		var frac float64
		for i := 0; i < b.N; i++ {
			res, err := gefin.Run(gefin.Config{
				Seed:               benchSeed,
				FaultsPerComponent: 120000,
				Workers:            runtime.NumCPU(),
				CheckpointEvery:    soc.DefaultCheckpointEvery,
				Prune:              true,
				Dedup:              dedup,
				Components:         []fault.Component{fault.CompDTLB},
			}, specs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Workloads) == 0 || res.Workloads[0].GoldenCycles == 0 {
				b.Fatal("empty campaign result")
			}
			if dedup {
				if res.Dedup == nil || res.Dedup.Deduped == 0 {
					b.Fatal("deduped arm resolved no injections from class representatives")
				}
				frac = res.Dedup.DedupedFraction()
			}
		}
		if dedup {
			b.ReportMetric(frac, "deduped-frac")
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, false) })
	b.Run("deduped", func(b *testing.B) { run(b, true) })
}

// BenchmarkCampaignTraced measures the observability layer's overhead on
// the BenchmarkCampaignParallel campaign: the untraced arm against full
// instrumentation (JSONL trace to disk plus the metrics registry). The
// acceptance budget is <5% on the traced arm.
func BenchmarkCampaignTraced(b *testing.B) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	runOnce := func(b *testing.B, o *obs.Observer) {
		b.Helper()
		res, err := gefin.RunWorkload(gefin.Config{
			Seed:               benchSeed,
			FaultsPerComponent: 24,
			Workers:            runtime.NumCPU(),
			Components: []fault.Component{
				fault.CompRegFile, fault.CompL1D, fault.CompDTLB,
			},
			Obs: o,
		}, spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.GoldenCycles == 0 {
			b.Fatal("empty campaign result")
		}
	}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, nil)
		}
	})
	b.Run("traced", func(b *testing.B) {
		f, err := os.Create(filepath.Join(b.TempDir(), "trace.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		o := obs.New(obs.Options{TraceWriter: f})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(b, o)
		}
		b.StopTimer()
		if err := o.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCampaignProvenance measures the propagation-provenance probe's
// overhead on the BenchmarkCampaignParallel campaign: the disabled arm is
// the plain engine (nil probe, every taint hook a nil-check), the enabled
// arm taints every injection and takes a mechanism verdict. Results are
// bit-identical in both arms (pinned by TestProvenanceResultInvariance);
// the acceptance budget is noise on the disabled arm and <10% on the
// enabled one. The measured numbers are recorded in BENCH_prov.json.
func BenchmarkCampaignProvenance(b *testing.B) {
	spec, ok := bench.ByName("crc32")
	if !ok {
		b.Fatal("crc32 missing")
	}
	run := func(b *testing.B, prov bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := gefin.RunWorkload(gefin.Config{
				Seed:               benchSeed,
				FaultsPerComponent: 24,
				Workers:            runtime.NumCPU(),
				Provenance:         prov,
				Components: []fault.Component{
					fault.CompRegFile, fault.CompL1D, fault.CompDTLB,
				},
			}, spec, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.GoldenCycles == 0 {
				b.Fatal("empty campaign result")
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
