// Package armsefi is a full-system soft-error assessment laboratory for an
// ARM-Cortex-A9-class platform, reproducing the methodology of
// "Demystifying Soft Error Assessment Strategies on ARM CPUs:
// Microarchitectural Fault Injection vs. Neutron Beam Experiments"
// (Chatzidimitriou et al., DSN 2019).
//
// The package is a facade over the internal substrates:
//
//   - a cycle-approximate out-of-order CPU model and a fast atomic model
//     over a shared ISA (internal/cpu, internal/isa);
//   - a memory system with real content bits in caches and TLBs
//     (internal/mem), a miniature operating system (internal/kernel), and
//     a full machine with snapshot/restore (internal/soc);
//   - the thirteen MiBench-derived workloads of the paper's Table III as
//     real machine code with native golden references (internal/bench);
//   - GeFIN-style statistical fault injection (internal/core/gefin), a
//     Monte-Carlo neutron-beam experiment (internal/core/beam), and the
//     FIT conversion and comparison mathematics (internal/core/fit).
//
// See README.md for a tour and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure.
package armsefi

import (
	"io"

	"armsefi/internal/bench"
	"armsefi/internal/core/beam"
	"armsefi/internal/core/fault"
	"armsefi/internal/core/fit"
	"armsefi/internal/core/gefin"
	"armsefi/internal/core/harness"
	"armsefi/internal/obs"
	"armsefi/internal/soc"
)

// Re-exported core types: the stable public surface of the library.
type (
	// Machine is a complete simulated platform (CPU, memory system,
	// kernel, devices).
	Machine = soc.Machine
	// MachineConfig is a platform preset.
	MachineConfig = soc.Config
	// ModelKind selects the atomic or detailed CPU model.
	ModelKind = soc.ModelKind
	// Workload is one benchmark specification.
	Workload = bench.Spec
	// BuiltWorkload is a workload instantiated at a scale.
	BuiltWorkload = bench.Built
	// Scale selects workload input sizes.
	Scale = bench.Scale
	// Fault is a single-event upset.
	Fault = fault.Fault
	// Component is an injectable hardware structure.
	Component = fault.Component
	// OutcomeClass is the Masked/SDC/AppCrash/SysCrash classification.
	OutcomeClass = fault.Class
	// InjectionConfig parameterises a fault-injection campaign.
	InjectionConfig = gefin.Config
	// InjectionResult is a fault-injection campaign outcome.
	InjectionResult = gefin.Result
	// BeamConfig parameterises a beam campaign.
	BeamConfig = beam.Config
	// BeamResult is a beam campaign outcome.
	BeamResult = beam.Result
	// Workbench is a machine prepared for repeated single-fault runs.
	Workbench = harness.Workbench
	// InjectionProgress receives injection-campaign progress events.
	// Events are serialised by the engine (no locking needed in the
	// callback) but may fire from any worker goroutine.
	InjectionProgress = gefin.Progress
	// InjectionProgressEvent is one injection-campaign progress event.
	InjectionProgressEvent = gefin.ProgressEvent
	// BeamProgress receives beam-campaign progress events, under the same
	// serialisation contract as InjectionProgress.
	BeamProgress = beam.Progress
	// BeamProgressEvent is one beam-campaign progress event.
	BeamProgressEvent = beam.ProgressEvent
	// FITComparison pairs beam and injection FIT rates for one workload.
	FITComparison = fit.Comparison
	// Observer is the campaign observability hook surface: set it on an
	// InjectionConfig or BeamConfig to stream per-experiment lifecycle
	// traces and collect live metrics. A nil Observer costs nothing.
	Observer = obs.Observer
	// ObserverOptions parameterises NewObserver.
	ObserverOptions = obs.Options
	// MetricsRegistry holds a campaign's counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// MetricsServer is a live HTTP exposition endpoint (Prometheus text,
	// expvar-style JSON, and pprof).
	MetricsServer = obs.Server
	// TraceRecord is one JSONL lifecycle trace line.
	TraceRecord = obs.Record
	// TraceSummary is the recomputed view of a trace file, comparable
	// against a campaign Result.
	TraceSummary = obs.Summary
)

// Model kinds.
const (
	ModelAtomic   = soc.ModelAtomic
	ModelDetailed = soc.ModelDetailed
)

// Workload scales.
const (
	ScaleTiny  = bench.ScaleTiny
	ScaleSmall = bench.ScaleSmall
	ScalePaper = bench.ScalePaper
)

// Outcome classes.
const (
	Masked   = fault.ClassMasked
	SDC      = fault.ClassSDC
	AppCrash = fault.ClassAppCrash
	SysCrash = fault.ClassSysCrash
)

// Injectable components (the paper's six targets).
const (
	CompRegFile = fault.CompRegFile
	CompL1I     = fault.CompL1I
	CompL1D     = fault.CompL1D
	CompL2      = fault.CompL2
	CompITLB    = fault.CompITLB
	CompDTLB    = fault.CompDTLB
)

// PresetZynq returns the physical-board platform preset (Table II, left).
func PresetZynq() MachineConfig { return soc.PresetZynq() }

// PresetModel returns the simulator platform preset (Table II, right).
func PresetModel() MachineConfig { return soc.PresetModel() }

// NewMachine builds a platform with the kernel loaded.
func NewMachine(cfg MachineConfig, model ModelKind) (*Machine, error) {
	return soc.NewMachine(cfg, model)
}

// Workloads returns the thirteen Table III workloads.
func Workloads() []Workload { return bench.All() }

// WorkloadByName resolves a workload (including the "fitraw_probe").
func WorkloadByName(name string) (Workload, bool) { return bench.ByName(name) }

// NewWorkbench prepares a machine for repeated fault runs of one workload.
func NewWorkbench(cfg MachineConfig, model ModelKind, built *BuiltWorkload) (*Workbench, error) {
	return harness.New(cfg, model, built)
}

// RunInjection runs a GeFIN-style statistical fault-injection campaign,
// parallelised across cfg.Workers workbenches (bit-identical results at
// any worker count).
func RunInjection(cfg InjectionConfig, specs []Workload, progress InjectionProgress) (*InjectionResult, error) {
	return gefin.Run(cfg, specs, progress)
}

// RunBeam runs a Monte-Carlo neutron-beam campaign, parallelised across
// cfg.Workers workbenches (bit-identical results at any worker count).
func RunBeam(cfg BeamConfig, specs []Workload, progress BeamProgress) (*BeamResult, error) {
	return beam.Run(cfg, specs, progress)
}

// NewObserver builds a campaign observer; see ObserverOptions for the
// trace and registry attachments.
func NewObserver(opts ObserverOptions) *Observer { return obs.New(opts) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ServeMetrics exposes a registry over HTTP on addr (HOST:PORT; ":0" picks
// a free port) until the returned server is closed.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}

// ReadTraceSummary recomputes campaign statistics from a JSONL lifecycle
// trace, for cross-checking against the engines' own Results.
func ReadTraceSummary(r io.Reader) (*TraceSummary, error) { return obs.ReadSummary(r) }

// CompareFIT converts an injection campaign to FIT rates and pairs it with
// beam measurements, yielding the per-workload comparisons behind the
// paper's Figures 6-10.
func CompareFIT(beamRes *BeamResult, injRes *InjectionResult, fitRawPerBit float64) []FITComparison {
	if fitRawPerBit == 0 {
		fitRawPerBit = fit.DefaultFITRawPerBit
	}
	var out []FITComparison
	for i := range injRes.Workloads {
		inj := fit.FromInjection(&injRes.Workloads[i], fitRawPerBit)
		if bw, ok := beamRes.Workload(inj.Workload); ok {
			out = append(out, fit.Compare(bw, inj))
		}
	}
	return out
}
